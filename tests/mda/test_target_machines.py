"""Tests of the target-architecture simulators (csim / vsim / archrt)."""

import pytest

from repro.mda import ArchError, CSoftwareMachine, VHardwareMachine, build_manifest
from repro.models import (
    build_checksum_model,
    build_microwave_model,
    build_packetproc_model,
    checksum,
    fletcher_reference,
    packetproc,
)
from repro.runtime import Simulation


def manifest_of(model):
    return build_manifest(model, model.components[0])


class TestCSoftwareMachine:
    def test_microwave_cook_cycle(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        oven = machine.create_instance("MO", oven_id=1)
        tube = machine.create_instance("PT", tube_id=1)
        machine.relate(oven, tube, "R1")
        machine.inject(oven, "MO1", {"seconds": 2})
        machine.run_to_quiescence()
        assert machine.state_of(oven) == "Complete"
        assert machine.state_of(tube) == "Off"
        assert machine.read_attribute(oven, "cycles_run") == 1
        assert machine.now == 2_000_000

    def test_matches_abstract_runtime_exactly(self):
        model = build_packetproc_model()
        abstract = Simulation(model)
        handles_a = packetproc.populate(abstract)
        packetproc.inject_packets(abstract, handles_a["M"], 15, length=200,
                                  spacing=100)
        abstract.run_to_quiescence()

        machine = CSoftwareMachine(manifest_of(model))
        handles_c = packetproc.populate(machine)
        packetproc.inject_packets(machine, handles_c["M"], 15, length=200,
                                  spacing=100)
        machine.run_to_quiescence()

        assert (machine.trace.behavioural_summary()
                == abstract.trace.behavioural_summary())
        for key in ("M", "CL", "CE", "D", "ST"):
            assert machine.state_of(handles_c[key]) == abstract.state_of(
                handles_a[key])

    def test_operations_compute_identically(self):
        machine = CSoftwareMachine(manifest_of(build_checksum_model()))
        machine.create_instance("AC", engine_id=1)
        machine.send_creation("J", "J0",
                              {"job_id": 1, "length": 64, "seed": 3})
        machine.run_to_quiescence()
        job = machine.instances_of("J")[0]
        assert machine.read_attribute(job, "result") == fletcher_reference(
            64, 3)

    def test_cant_happen_raises(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        oven = machine.create_instance("MO", oven_id=1)
        machine.inject(oven, "MO5")      # no Idle entry
        with pytest.raises(ArchError):
            machine.run_to_quiescence()

    def test_log_and_metrics_collected(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        oven = machine.create_instance("MO", oven_id=1)
        machine.inject(oven, "MO1", {"seconds": 1})
        machine.run_to_quiescence()
        assert any(line == "ding" for _t, line in machine.log_lines)

    def test_ops_counter_increases(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        oven = machine.create_instance("MO", oven_id=1)
        machine.inject(oven, "MO1", {"seconds": 1})
        machine.run_to_quiescence()
        assert machine.ops_executed > 10


class TestVHardwareMachine:
    def test_clock_scales_delays(self):
        machine = VHardwareMachine(manifest_of(build_microwave_model()),
                                   clock_mhz=100)
        oven = machine.create_instance("MO", oven_id=1)
        machine.inject(oven, "MO1", {"seconds": 1})
        machine.run_to_quiescence()
        assert machine.state_of(oven) == "Complete"
        # one second at 100 MHz = 1e8 cycles (plus pipeline edges)
        assert machine.cycle >= 100_000_000

    def test_bad_clock_rejected(self):
        with pytest.raises(ArchError):
            VHardwareMachine(manifest_of(build_microwave_model()),
                             clock_mhz=0)

    def test_registered_outputs_take_one_edge(self):
        machine = VHardwareMachine(manifest_of(build_microwave_model()),
                                   clock_mhz=1)
        oven = machine.create_instance("MO", oven_id=1)
        machine.inject(oven, "MO1", {"seconds": 0})
        # edge 1 consumes MO1 and *registers* MO5; edge 2 consumes MO5
        machine.tick()
        assert machine.state_of(oven) == "Preparing"
        machine.tick()
        assert machine.state_of(oven) == "Cooking"

    def test_behaviour_matches_abstract(self):
        model = build_packetproc_model()
        abstract = Simulation(model)
        handles_a = packetproc.populate(abstract)
        packetproc.inject_packets(abstract, handles_a["M"], 10, length=100,
                                  spacing=20)
        abstract.run_to_quiescence()

        machine = VHardwareMachine(manifest_of(model), clock_mhz=50)
        handles_v = packetproc.populate(machine)
        packetproc.inject_packets(machine, handles_v["M"], 10, length=100,
                                  spacing=20)
        machine.run_to_quiescence()
        assert (machine.trace.behavioural_summary()
                == abstract.trace.behavioural_summary())

    def test_run_until_converts_microseconds(self):
        machine = VHardwareMachine(manifest_of(build_microwave_model()),
                                   clock_mhz=10)
        oven = machine.create_instance("MO", oven_id=1)
        machine.inject(oven, "MO1", {"seconds": 3})
        machine.run_until(1_500_000)     # 1.5 s into a 3 s cook
        assert machine.state_of(oven) == "Cooking"
        machine.run_until(4_000_000)
        assert machine.state_of(oven) == "Complete"


class TestArchRuntimeDetails:
    def test_multiplicity_enforced(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        oven_a = machine.create_instance("MO", oven_id=1)
        oven_b = machine.create_instance("MO", oven_id=2)
        tube = machine.create_instance("PT", tube_id=1)
        machine.relate(oven_a, tube, "R1")
        with pytest.raises(ArchError):
            machine.relate(oven_b, tube, "R1")

    def test_delete_clears_links_and_events(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        oven = machine.create_instance("MO", oven_id=1)
        tube = machine.create_instance("PT", tube_id=1)
        machine.relate(oven, tube, "R1")
        machine.inject(tube, "PT1")
        machine.delete_instance(tube)
        machine.run_to_quiescence()    # dropped, no error
        assert machine.navigate(oven, "R1", "PT") == ()

    def test_unknown_instance_raises(self):
        machine = CSoftwareMachine(manifest_of(build_microwave_model()))
        with pytest.raises(ArchError):
            machine.state_of(99)

    def test_timer_bridge_in_architecture(self):
        # the trafficlight model uses TIM::timer_start/cancel
        from repro.models import build_trafficlight_model
        machine = CSoftwareMachine(
            manifest_of(build_trafficlight_model()))
        tc = machine.create_instance("TC", controller_id=1)
        machine.inject(tc, "T1")
        machine.run_until(36_000_000)
        assert machine.state_of(tc) == "AllRedToEW"
