"""Generator sweep: every model × many partitions stays clean.

A broad net over the emitters: for each catalog model and every
single-class partition (plus all-hw / all-sw), the build must lint
clean, its interface halves must carry identical layout tables, and the
manifest the generators printed from must still execute (spot-checked by
booting a C-architecture machine over it).
"""

import pytest

from repro.marks import marks_for_partition
from repro.mda import CSoftwareMachine, InterfaceCodec, ModelCompiler
from repro.models import CATALOG, all_models


def partitions_of(component):
    keys = sorted(component.class_keys)
    singles = [(key,) for key in keys]
    return [(), tuple(keys)] + singles


@pytest.mark.parametrize("name", [entry.name for entry in CATALOG])
def test_every_partition_builds_clean(name):
    model = all_models()[name]
    component = model.components[0]
    compiler = ModelCompiler(model)
    for hardware in partitions_of(component):
        build = compiler.compile(marks_for_partition(component, hardware))
        findings = build.lint()
        assert findings == [], (name, hardware, findings[:3])

        # interface halves always agree, even for empty boundaries
        c_codec = InterfaceCodec.from_artifact(
            build.interface.emit_c_header())
        v_codec = InterfaceCodec.from_artifact(
            build.interface.emit_vhdl_package())
        assert c_codec.layouts == v_codec.layouts, (name, hardware)

        # message count matches the distinct boundary (receiver, event)s
        boundary = {(f.receiver_class, f.event_label)
                    for f in build.partition.boundary_flows}
        assert len(build.interface.messages) == len(boundary)


@pytest.mark.parametrize("name", [entry.name for entry in CATALOG])
def test_manifest_boots_on_target_architecture(name):
    model = all_models()[name]
    component = model.components[0]
    build = ModelCompiler(model).compile(marks_for_partition(component, ()))
    machine = CSoftwareMachine(build.manifest)
    # every class can be instantiated on the architecture runtime
    for klass in component.classes:
        handle = machine.create_instance(klass.key_letters)
        if klass.is_active:
            assert machine.state_of(handle) == (
                klass.statemachine.initial_state)


def test_total_generated_volume_is_substantial():
    """The compiler really does write the system: count the output."""
    total = 0
    for name, model in all_models().items():
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, tuple(component.class_keys)))
        total += build.total_lines()
    assert total > 1500     # all-hardware builds alone exceed this
