"""The metrics registry: percentiles, metric types, no-op discipline."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    active_registry,
    observe,
    percentile_nearest_rank,
    set_active_registry,
)


class TestPercentile:
    def test_p99_of_100_distinct_samples_is_the_100th_value(self):
        # the regression the shared helper exists for: round-based
        # indexing (int(round(0.99 * 99)) == 98) reported the 99th value
        samples = list(range(1, 101))
        assert percentile_nearest_rank(samples, 0.99) == 100

    def test_order_independent(self):
        samples = [5, 1, 4, 2, 3]
        assert percentile_nearest_rank(samples, 0.5) == 3

    def test_extremes(self):
        samples = [10, 20, 30]
        assert percentile_nearest_rank(samples, 0.0) == 10
        assert percentile_nearest_rank(samples, 1.0) == 30

    def test_single_sample(self):
        assert percentile_nearest_rank([42], 0.99) == 42

    def test_never_under_reports_the_tail(self):
        # any non-zero fraction of two samples must report the larger one
        assert percentile_nearest_rank([1, 1000], 0.01) == 1000

    def test_empty_is_nan(self):
        assert math.isnan(percentile_nearest_rank([], 0.5))

    def test_fraction_out_of_range(self):
        with pytest.raises(MetricsError):
            percentile_nearest_rank([1], 1.5)
        with pytest.raises(MetricsError):
            percentile_nearest_rank([1], -0.1)

    def test_accepts_generators(self):
        assert percentile_nearest_rank((v for v in (3, 1, 2)), 1.0) == 3


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(MetricsError):
            Counter("c").inc(-1)


class TestGauge:
    def test_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(9.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.max_value == 9.0

    def test_negative_first_value_is_its_own_maximum(self):
        gauge = Gauge("g")
        gauge.set(-5.0)
        assert gauge.max_value == -5.0


class TestHistogram:
    def test_bucket_counts(self):
        histogram = Histogram("h", buckets=(10, 100))
        for value in (1, 10, 11, 1000):
            histogram.observe(value)
        assert histogram.bucket_table() == ((10, 2), (100, 1), (float("inf"), 1))

    def test_summary_statistics(self):
        histogram = Histogram("h", buckets=(10,))
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.count == 100
        assert histogram.min == 1
        assert histogram.max == 100
        assert histogram.mean() == 50.5
        assert histogram.percentile(0.99) == 100  # exact, not bucketed

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(MetricsError):
            Histogram("h", buckets=(10, 5))
        with pytest.raises(MetricsError):
            Histogram("h", buckets=(5, 5))
        with pytest.raises(MetricsError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")
        with pytest.raises(MetricsError):
            registry.histogram("x")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("")
        with pytest.raises(MetricsError):
            registry.counter(None)

    def test_as_dict_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(7)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["p99"] == 7
        json.dumps(snapshot)  # must not choke on NaN or exotic types

    def test_names_and_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ("a", "b")
        assert len(registry) == 2

    def test_render_table_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("lat").observe(5)
        table = registry.render_table()
        assert "hits" in table and "lat" in table
        assert MetricsRegistry().render_table() == "(no metrics recorded)"


class TestActiveRegistry:
    def test_disabled_by_default(self):
        assert active_registry() is None

    def test_observe_installs_and_restores(self):
        assert active_registry() is None
        with observe() as registry:
            assert active_registry() is registry
            with observe() as inner:
                assert active_registry() is inner
            assert active_registry() is registry
        assert active_registry() is None

    def test_observe_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert active_registry() is None

    def test_set_active_registry_returns_previous(self):
        registry = MetricsRegistry()
        assert set_active_registry(registry) is None
        assert set_active_registry(None) is registry
        assert active_registry() is None
