"""JSONL trace export: golden round-trips, schema guards, zero overhead."""

import pytest

from repro.models.catalog import CATALOG, build_model
from repro.obs import (
    SCHEMA_VERSION,
    TraceSchemaError,
    attach_machine_trace,
    batch_report_trace,
    dump_jsonl,
    load_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.obs.metrics import active_registry
from repro.runtime.simulator import Simulation
from repro.runtime.tracing import Trace, TraceKind
from repro.verify import AbstractTarget, CoSimTarget, chaos_build, run_case, suite_for


def traced_run(name: str) -> Trace:
    """Run the first suite case of a catalog model on the abstract target."""
    target = AbstractTarget(build_model(name))
    result = run_case(suite_for(name)[0], target)
    assert not result.error
    return target.trace


class TestRoundTrip:
    @pytest.mark.parametrize("name", [entry.name for entry in CATALOG])
    def test_catalog_golden_round_trip(self, name):
        trace = traced_run(name)
        assert len(trace) > 0
        text = dump_jsonl(trace)
        loaded = load_jsonl(text)
        # byte identity: the format is canonical, so dump∘load == id
        assert dump_jsonl(loaded) == text
        # behavioural identity: the loaded trace tells the same story
        assert loaded.behavioural_summary() == trace.behavioural_summary()
        assert len(loaded) == len(trace)
        assert [e.kind for e in loaded] == [e.kind for e in trace]

    def test_file_round_trip(self, tmp_path):
        trace = traced_run("microwave")
        path = tmp_path / "run.jsonl"
        write_jsonl(trace, path)
        loaded = read_jsonl(path)
        assert dump_jsonl(loaded) == path.read_text()

    def test_empty_trace_round_trips(self):
        text = dump_jsonl(Trace())
        assert len(load_jsonl(text)) == 0
        assert dump_jsonl(load_jsonl(text)) == text

    def test_stream_shape(self):
        trace = Trace()
        trace.record(5, TraceKind.LOG, note="hello")
        text = dump_jsonl(trace)
        assert text.endswith("\n")
        header, line = text.splitlines()
        assert header == '{"schema":"repro.trace","version":1}'
        assert line == '{"data":{"note":"hello"},"index":0,"kind":"log","time":5}'


class TestSchemaGuards:
    def test_rejects_future_version(self):
        text = dump_jsonl(Trace()).replace(
            f'"version":{SCHEMA_VERSION}', f'"version":{SCHEMA_VERSION + 1}')
        with pytest.raises(TraceSchemaError, match="version"):
            load_jsonl(text)

    def test_rejects_foreign_schema(self):
        with pytest.raises(TraceSchemaError, match="schema"):
            load_jsonl('{"schema":"other.format","version":1}\n')

    def test_rejects_empty_stream(self):
        with pytest.raises(TraceSchemaError):
            load_jsonl("")

    def test_rejects_malformed_line(self):
        text = dump_jsonl(Trace()) + "not json\n"
        with pytest.raises(TraceSchemaError, match="line 2"):
            load_jsonl(text)

    def test_rejects_unknown_kind(self):
        text = (dump_jsonl(Trace())
                + '{"data":{},"index":0,"kind":"warp_drive","time":0}\n')
        with pytest.raises(TraceSchemaError, match="warp_drive"):
            load_jsonl(text)

    def test_rejects_missing_field(self):
        text = dump_jsonl(Trace()) + '{"data":{},"kind":"log","time":0}\n'
        with pytest.raises(TraceSchemaError, match="index"):
            load_jsonl(text)

    def test_rejects_index_gap(self):
        text = (dump_jsonl(Trace())
                + '{"data":{},"index":3,"kind":"log","time":0}\n')
        with pytest.raises(TraceSchemaError, match="append-only"):
            load_jsonl(text)

    def test_rejects_non_object_data(self):
        text = (dump_jsonl(Trace())
                + '{"data":[1],"index":0,"kind":"log","time":0}\n')
        with pytest.raises(TraceSchemaError, match="object"):
            load_jsonl(text)


class TestSubsystemLifting:
    def test_machine_trace_records_bus_level_traffic(self):
        machine = CoSimTarget(chaos_build("microwave")).engine
        trace = attach_machine_trace(machine)
        result = run_case(suite_for("microwave")[0],
                          CoSimTargetReuse(machine))
        assert not result.error
        sent = trace.of_kind(TraceKind.SIGNAL_SENT)
        consumed = trace.of_kind(TraceKind.SIGNAL_CONSUMED)
        assert sent and consumed
        assert dump_jsonl(load_jsonl(dump_jsonl(trace))) == dump_jsonl(trace)

    def test_batch_report_trace(self, tmp_path):
        from repro.build import BatchJob, run_batch

        report = run_batch([BatchJob("microwave", "sw-only", ())],
                           jobs=1, cache_dir=str(tmp_path))
        trace = batch_report_trace(report)
        assert len(trace) == 1
        event = trace.events[0]
        assert event.kind is TraceKind.LOG
        assert event.data["job"] == "microwave:sw-only"
        assert event.data["ok"] is True
        assert dump_jsonl(load_jsonl(dump_jsonl(trace))) == dump_jsonl(trace)


class CoSimTargetReuse(CoSimTarget):
    """Drive an already-constructed machine (observers pre-attached)."""

    def __init__(self, machine):
        self._engine = machine
        self._budget_us = 3_600 * 1_000_000


class TestDisabledOverhead:
    def test_disabled_hooks_add_no_events_and_no_metrics(self):
        # no registry active, no observers attached: a run must produce
        # exactly the same trace as the seed and touch no metric state
        assert active_registry() is None
        simulation = Simulation(build_model("microwave"))
        assert simulation._metric_dispatches is None
        machine = CoSimTarget(chaos_build("microwave")).engine
        assert machine._m_routed is None
        assert machine.bus._m_messages is None
        assert machine.on_sent == [] and machine.on_consumed == []

    def test_abstract_run_trace_identical_with_and_without_registry(self):
        baseline = traced_run("trafficlight")
        from repro.obs import observe

        with observe() as registry:
            observed = traced_run("trafficlight")
        assert dump_jsonl(observed) == dump_jsonl(baseline)
        assert registry.counter("runtime.dispatches").value > 0
