"""Critical-path analysis over synthetic and real traces."""

from repro.models.catalog import build_model
from repro.obs import critical_path
from repro.runtime.tracing import Trace, TraceKind
from repro.verify import AbstractTarget, run_case, suite_for


def send(trace, time, sequence, activity=0, label="S"):
    trace.record(time, TraceKind.SIGNAL_SENT,
                 sequence=sequence, label=label, target=1, activity=activity)


def consume(trace, time, sequence, activity, label="S"):
    trace.record(time, TraceKind.SIGNAL_CONSUMED,
                 sequence=sequence, label=label, target=1)
    trace.record(time, TraceKind.ACTIVITY_START,
                 activity=activity, consumed_sequence=sequence)


class TestSyntheticChains:
    def test_empty_trace(self):
        path = critical_path(Trace())
        assert path.length == 0
        assert path.span == 0
        assert "empty" in path.render()

    def test_linear_chain(self):
        # 1 consumed by activity 10 sends 2; 2 consumed by 20 sends 3
        trace = Trace()
        send(trace, 0, 1, activity=0, label="A")
        consume(trace, 5, 1, activity=10, label="A")
        send(trace, 6, 2, activity=10, label="B")
        consume(trace, 9, 2, activity=20, label="B")
        send(trace, 10, 3, activity=20, label="C")
        consume(trace, 15, 3, activity=30, label="C")
        trace.record(18, TraceKind.ACTIVITY_END, activity=30)
        path = critical_path(trace)
        assert path.labels() == ("A", "B", "C")
        assert [step.sequence for step in path.steps] == [1, 2, 3]
        assert path.start_time == 0
        assert path.end_time == 18   # through the final activity's end
        assert path.span == 18

    def test_branching_picks_the_longer_arm(self):
        # activity 10 sends 2 (dead end) and 3 (extends one more hop)
        trace = Trace()
        send(trace, 0, 1, activity=0)
        consume(trace, 1, 1, activity=10)
        send(trace, 2, 2, activity=10, label="short")
        send(trace, 2, 3, activity=10, label="long")
        consume(trace, 3, 2, activity=20, label="short")
        consume(trace, 3, 3, activity=30, label="long")
        send(trace, 4, 4, activity=30, label="tail")
        consume(trace, 6, 4, activity=40, label="tail")
        path = critical_path(trace)
        assert path.labels() == ("S", "long", "tail")

    def test_equal_arms_tie_toward_lower_sequence(self):
        trace = Trace()
        send(trace, 0, 1, activity=0)
        consume(trace, 1, 1, activity=10)
        send(trace, 2, 2, activity=10, label="left")
        send(trace, 2, 3, activity=10, label="right")
        consume(trace, 3, 2, activity=20, label="left")
        consume(trace, 3, 3, activity=30, label="right")
        path = critical_path(trace)
        assert path.labels() == ("S", "left")
        # and the run is deterministic
        assert critical_path(trace).labels() == path.labels()

    def test_independent_roots_pick_longest_chain(self):
        trace = Trace()
        send(trace, 0, 1, activity=0, label="lone")
        consume(trace, 1, 1, activity=10, label="lone")
        send(trace, 0, 2, activity=0, label="head")
        consume(trace, 1, 2, activity=20, label="head")
        send(trace, 2, 3, activity=20, label="next")
        consume(trace, 3, 3, activity=30, label="next")
        path = critical_path(trace)
        assert path.labels() == ("head", "next")

    def test_trace_without_activities_yields_single_link(self):
        # bus-level co-sim recordings carry no activity events
        trace = Trace()
        trace.record(0, TraceKind.SIGNAL_SENT, sequence=1, label="X", target=2)
        trace.record(7, TraceKind.SIGNAL_CONSUMED,
                     sequence=1, label="X", target=2)
        path = critical_path(trace)
        assert path.length == 1
        assert path.steps[0].sent_time == 0
        assert path.steps[0].consumed_time == 7


class TestRealTraces:
    def test_microwave_run_has_a_multi_hop_path(self):
        target = AbstractTarget(build_model("microwave"))
        result = run_case(suite_for("microwave")[0], target)
        assert not result.error
        path = critical_path(target.trace)
        assert path.length >= 2
        # every link is consumed no earlier than it was sent, and links
        # are causally ordered
        for step in path.steps:
            assert step.consumed_time >= step.sent_time
        times = [step.consumed_time for step in path.steps]
        assert times == sorted(times)
        sequences = [step.sequence for step in path.steps]
        assert sequences == sorted(sequences)
        assert path.render().count("\n") == path.length
