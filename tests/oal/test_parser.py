"""Unit tests for the OAL parser."""

import pytest

from repro.oal import ast, parse_activity, parse_expression
from repro.oal.errors import OALSyntaxError


def only_stmt(text):
    block = parse_activity(text)
    assert len(block.statements) == 1
    return block.statements[0]


class TestAssignments:
    def test_local_assignment(self):
        stmt = only_stmt("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.NameRef)
        assert stmt.target.name == "x"

    def test_self_attribute_assignment(self):
        stmt = only_stmt("self.count = 2;")
        assert isinstance(stmt.target, ast.AttrAccess)
        assert isinstance(stmt.target.target, ast.SelfRef)
        assert stmt.target.attribute == "count"

    def test_variable_attribute_assignment(self):
        stmt = only_stmt("rec.bytes = 5;")
        assert isinstance(stmt.target, ast.AttrAccess)
        assert stmt.target.target.name == "rec"

    def test_missing_semicolon_rejected(self):
        with pytest.raises(OALSyntaxError):
            parse_activity("x = 1")


class TestInstanceStatements:
    def test_create(self):
        stmt = only_stmt("create object instance call of CA;")
        assert isinstance(stmt, ast.CreateInstance)
        assert stmt.variable == "call"
        assert stmt.class_key == "CA"

    def test_delete(self):
        stmt = only_stmt("delete object instance call;")
        assert isinstance(stmt, ast.DeleteInstance)

    def test_select_any_extent(self):
        stmt = only_stmt("select any w from instances of W;")
        assert isinstance(stmt, ast.SelectFromInstances)
        assert not stmt.many
        assert stmt.where is None

    def test_select_many_extent_with_where(self):
        stmt = only_stmt(
            "select many ws from instances of W where (selected.n > 3);")
        assert stmt.many
        assert isinstance(stmt.where, ast.Binary)

    def test_select_one_related(self):
        stmt = only_stmt("select one tube related by self->PT[R1];")
        assert isinstance(stmt, ast.SelectRelated)
        assert not stmt.many
        assert stmt.hops[0].class_key == "PT"
        assert stmt.hops[0].association == "R1"

    def test_select_related_chain_with_phrase(self):
        stmt = only_stmt(
            "select many rs related by x->A[R1]->B[R2.'owns'];")
        assert len(stmt.hops) == 2
        assert stmt.hops[1].phrase == "owns"

    def test_select_one_requires_related_by(self):
        with pytest.raises(OALSyntaxError):
            parse_activity("select one w from instances of W;")

    def test_relate_and_unrelate(self):
        relate = only_stmt("relate a to b across R3;")
        assert isinstance(relate, ast.Relate)
        unrelate = only_stmt("unrelate a from b across R3.'queues';")
        assert isinstance(unrelate, ast.Unrelate)
        assert unrelate.phrase == "queues"


class TestGenerate:
    def test_generate_with_args_to_instance(self):
        stmt = only_stmt("generate EV1:KL(x: 1, y: 2) to target;")
        assert isinstance(stmt, ast.Generate)
        assert stmt.class_key == "KL"
        assert [name for name, _v in stmt.arguments] == ["x", "y"]

    def test_generate_to_self(self):
        stmt = only_stmt("generate EV1:KL() to self;")
        assert isinstance(stmt.target, ast.SelfRef)

    def test_generate_without_class_scope(self):
        stmt = only_stmt("generate EV1 to peer;")
        assert stmt.class_key is None

    def test_generate_with_delay(self):
        stmt = only_stmt("generate EV1:KL() to self delay 1000;")
        assert isinstance(stmt.delay, ast.IntLit)

    def test_creation_generate_has_no_target(self):
        stmt = only_stmt("generate J0:J(job_id: 1);")
        assert stmt.target is None


class TestControlFlow:
    def test_if_elif_else(self):
        stmt = only_stmt("""
            if (a > 1)
                x = 1;
            elif (a > 0)
                x = 2;
            else
                x = 3;
            end if;
        """)
        assert isinstance(stmt, ast.If)
        assert len(stmt.branches) == 2
        assert stmt.orelse is not None

    def test_while_with_break_continue(self):
        stmt = only_stmt("""
            while (x < 10)
                x = x + 1;
                if (x == 5)
                    break;
                else
                    continue;
                end if;
            end while;
        """)
        assert isinstance(stmt, ast.While)

    def test_for_each(self):
        stmt = only_stmt("""
            for each item in items
                total = total + 1;
            end for;
        """)
        assert isinstance(stmt, ast.ForEach)
        assert stmt.variable == "item"

    def test_return_with_and_without_value(self):
        assert only_stmt("return;").value is None
        assert isinstance(only_stmt("return 3;").value, ast.IntLit)

    def test_unclosed_block_rejected(self):
        with pytest.raises(OALSyntaxError):
            parse_activity("while (x < 1) x = 1;")


class TestCalls:
    def test_bridge_call_statement(self):
        stmt = only_stmt('LOG::info(message: "hi");')
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.BridgeCall)

    def test_instance_operation_statement(self):
        stmt = only_stmt("engine.reset(hard: true);")
        assert isinstance(stmt.expr, ast.OperationCall)

    def test_bare_expression_statement_rejected(self):
        with pytest.raises(OALSyntaxError):
            parse_activity("1 + 2;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = parse_expression("a < b and c > d")
        assert expr.op == "and"
        assert expr.left.op == "<"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("not a and b")
        assert expr.op == "and"
        assert isinstance(expr.left, ast.Unary)

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Unary)

    def test_enum_literal(self):
        expr = parse_expression("DoorState::OPEN")
        assert isinstance(expr, ast.EnumLit)
        assert expr.enum_name == "DoorState"

    def test_bridge_call_expression(self):
        expr = parse_expression("TIM::current_time()")
        assert isinstance(expr, ast.BridgeCall)
        assert expr.arguments == ()

    def test_param_access(self):
        expr = parse_expression("param.seconds")
        assert isinstance(expr, ast.ParamRef)

    def test_rcvd_evt_alias(self):
        expr = parse_expression("rcvd_evt.seconds")
        assert isinstance(expr, ast.ParamRef)

    def test_cardinality_keywords(self):
        for keyword in ("cardinality", "empty", "not_empty"):
            expr = parse_expression(f"{keyword} things")
            assert isinstance(expr, ast.Unary)
            assert expr.op == keyword

    def test_chained_attribute_access(self):
        expr = parse_expression("a.b")
        assert isinstance(expr, ast.AttrAccess)

    def test_string_concat(self):
        expr = parse_expression('"a" + "b"')
        assert expr.op == "+"


class TestWalkers:
    def test_walk_statements_reaches_nested(self):
        block = parse_activity("""
            if (a > 0)
                while (b < 2)
                    b = b + 1;
                end while;
            end if;
        """)
        kinds = [type(s).__name__ for s in ast.walk_statements(block)]
        assert kinds == ["If", "While", "Assign"]

    def test_walk_expressions_reaches_all(self):
        block = parse_activity("x = 1 + 2;")
        exprs = list(ast.walk_expressions(block))
        assert sum(isinstance(e, ast.IntLit) for e in exprs) == 2
