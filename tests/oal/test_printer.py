"""Pretty-printer tests, including the parse/print round-trip property."""

import dataclasses

from hypothesis import given, strategies as st

from repro.oal import (
    ast,
    parse_activity,
    parse_expression,
    print_activity,
    print_expression,
)


def strip_positions(node):
    """Structural equality helper: rebuild the tree with zeroed positions."""
    if isinstance(node, tuple):
        return tuple(strip_positions(item) for item in node)
    if isinstance(node, ast.Block):
        return ast.Block(strip_positions(node.statements))
    if dataclasses.is_dataclass(node):
        values = {}
        for field in dataclasses.fields(node):
            if field.name in ("line", "column"):
                values[field.name] = 0
            else:
                values[field.name] = strip_positions(getattr(node, field.name))
        return type(node)(**values)
    return node


def roundtrips(text: str) -> bool:
    tree = parse_activity(text)
    printed = print_activity(tree)
    reparsed = parse_activity(printed)
    return strip_positions(tree) == strip_positions(reparsed)


class TestStatementRoundTrips:
    def test_every_statement_form(self):
        activity = """
            x = 1;
            self.count = x + 2;
            create object instance it of IT;
            it.rank = 3;
            delete object instance it;
            select any one_w from instances of W;
            select many ws from instances of W where (selected.n > 0);
            select one peer related by self->W[R2.'manages'];
            select many gs related by self->G[R1]->W[R2.'manages']
                where (selected.n == 1);
            relate self to one_w across R2.'manages';
            unrelate self from one_w across R2.'manages';
            generate W1:W(amount: 5) to self;
            generate G1(n: 2) to one_w delay 100;
            generate J0:J(job_id: 7);
            if (x > 0)
                x = x - 1;
            elif (x < 0)
                x = x + 1;
            else
                x = 0;
            end if;
            while (x < 10)
                x = x + 1;
                if (x == 5)
                    break;
                else
                    continue;
                end if;
            end while;
            for each g in ws
                x = x + 1;
            end for;
            LOG::info(message: "done");
            return;
        """
        assert roundtrips(activity)

    def test_printed_text_is_stable(self):
        text = "x = 1 + 2 * 3;\n"
        tree = parse_activity(text)
        printed = print_activity(tree)
        assert print_activity(parse_activity(printed)) == printed

    def test_empty_block(self):
        assert print_activity(parse_activity("")) == ""


class TestExpressionPrinting:
    def test_precedence_preserved_without_extra_parens(self):
        assert print_expression(parse_expression("1 + 2 * 3")) == "1 + 2 * 3"
        assert print_expression(
            parse_expression("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_not_and_precedence(self):
        assert print_expression(
            parse_expression("not a and b")) == "not a and b"
        assert print_expression(
            parse_expression("not (a and b)")) == "not (a and b)"

    def test_unary_minus(self):
        assert print_expression(parse_expression("-x + 1")) == "-x + 1"
        assert print_expression(parse_expression("-(x + 1)")) == "-(x + 1)"

    def test_string_escapes(self):
        source = r'"line\nbreak \"quoted\""'
        printed = print_expression(parse_expression(source))
        assert printed == source

    def test_cardinality_forms(self):
        assert print_expression(
            parse_expression("cardinality things")) == "cardinality things"
        assert print_expression(
            parse_expression("empty x == false")) == "empty x == false"


# ---------------------------------------------------------------------------
# property: random expression trees survive print -> parse
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "bee", "c3", "delta"])

_leaf = st.one_of(
    st.integers(0, 10_000).map(lambda v: ast.IntLit(v)),
    st.floats(0.0, 100.0, allow_nan=False).map(lambda v: ast.RealLit(v)),
    st.booleans().map(lambda v: ast.BoolLit(v)),
    _names.map(lambda n: ast.NameRef(n)),
    st.just(ast.SelfRef()),
    _names.map(lambda n: ast.ParamRef(n)),
    st.text(
        alphabet=st.characters(
            codec="ascii", exclude_characters='"\\\n\t\r',
            exclude_categories=("Cc",)),
        max_size=12,
    ).map(lambda s: ast.StringLit(s)),
)


def _grow(children):
    binary = st.tuples(
        st.sampled_from(["+", "-", "*", "/", "%", "==", "!=", "<", "<=",
                         ">", ">=", "and", "or"]),
        children, children,
    ).map(lambda t: ast.Binary(t[0], t[1], t[2]))
    unary = st.tuples(
        st.sampled_from(["-", "not", "cardinality", "empty", "not_empty"]),
        children,
    ).map(lambda t: ast.Unary(t[0], t[1]))
    attr = st.tuples(children, _names).map(
        lambda t: ast.AttrAccess(t[0], t[1]))
    return st.one_of(binary, unary, attr)


_expr_trees = st.recursive(_leaf, _grow, max_leaves=20)


@given(_expr_trees)
def test_expression_print_parse_roundtrip(tree):
    printed = print_expression(tree)
    reparsed = parse_expression(printed)
    assert strip_positions(reparsed) == strip_positions(tree)
