"""Unit tests for the OAL static analyzer."""

import pytest

from repro.oal import AnalysisError, analyze_activity, parse_activity
from repro.oal.analyzer import shared_event_parameters
from repro.xuml import CoreType, InstRefType, InstSetType, ModelBuilder


def fixture_model():
    """A component with enough structure to exercise every rule."""
    builder = ModelBuilder("M")
    component = builder.component("c")
    component.enum("Mode", ["OFF", "ON"])
    component.ext("LOG").bridge("info", params=[("message", "string")])

    widget = component.klass("Widget", "W")
    widget.attr("w_id", "unique_id")
    widget.attr("count", "integer")
    widget.attr("ratio", "real")
    widget.attr("label", "string")
    widget.attr("mode", "Mode")
    widget.attr("armed", "boolean")
    widget.event("W1", params=[("amount", "integer")])
    widget.event("W2", params=[("amount", "integer"), ("note", "string")])
    widget.event("W3")
    widget.state("Idle", 1)
    widget.state("Active", 2)
    widget.trans("Idle", "W1", "Active")
    widget.trans("Idle", "W2", "Active")
    widget.trans("Active", "W3", "Idle")
    widget.operation("bump", body="return param.x + 1;",
                     returns="integer", params=[("x", "integer")])
    widget.operation("census", body="""
        select many ws from instances of W;
        return cardinality ws;
    """, instance_based=False, returns="integer")

    gadget = component.klass("Gadget", "G")
    gadget.attr("g_id", "unique_id")
    gadget.attr("size", "integer")
    gadget.event("G1", params=[("n", "integer")])
    gadget.state("Only", 1)
    gadget.trans("Only", "G1", "Only")

    component.assoc("R1", ("W", "owns", "1"), ("G", "is owned by", "*"))
    component.assoc("R2", ("W", "manages", "0..1"),
                    ("W", "is managed by", "*"))
    return builder.build(check=False)


@pytest.fixture(scope="module")
def model():
    return fixture_model()


def analyze(model, text, state_name="Active", class_key="W"):
    component = model.component("c")
    klass = component.klass(class_key)
    state = klass.statemachine.state(state_name)
    return analyze_activity(
        parse_activity(text), model, component, klass, state)


class TestVariableTyping:
    def test_assignment_binds_type(self, model):
        analysis = analyze(model, "x = 1; y = x + 2;")
        assert analysis.variable_types["x"] is CoreType.INTEGER

    def test_rebind_to_other_type_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, 'x = 1; x = "s";')

    def test_int_widens_into_real_variable(self, model):
        analysis = analyze(model, "x = 1.5; x = 2;")
        assert analysis.variable_types["x"] is CoreType.REAL

    def test_use_before_assignment_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "y = x + 1;")

    def test_select_binds_ref_and_set_types(self, model):
        analysis = analyze(model, """
            select any one_w from instances of W;
            select many all_g from instances of G;
        """)
        assert analysis.variable_types["one_w"] == InstRefType("W")
        assert analysis.variable_types["all_g"] == InstSetType("G")

    def test_foreach_binds_element_type(self, model):
        analysis = analyze(model, """
            select many gs from instances of G;
            for each g in gs
                n = g.size;
            end for;
        """)
        assert analysis.variable_types["g"] == InstRefType("G")


class TestAttributeRules:
    def test_self_attribute_types(self, model):
        analysis = analyze(model, "self.count = self.count + 1;")
        assert analysis.variable_types == {}

    def test_unknown_attribute_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "self.ghost = 1;")

    def test_type_mismatch_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "self.count = true;")

    def test_enum_assignment(self, model):
        analyze(model, "self.mode = Mode::ON;")

    def test_unknown_enumerator_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "self.mode = Mode::BROKEN;")

    def test_attribute_on_set_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, """
                select many gs from instances of G;
                n = gs.size;
            """)


class TestEventParameters:
    def test_shared_params_across_entering_events(self, model):
        klass = model.component("c").klass("W")
        state = klass.statemachine.state("Active")
        shared = shared_event_parameters(klass, state)
        # W1 and W2 both enter Active; only 'amount' is common
        assert set(shared) == {"amount"}

    def test_shared_param_usable(self, model):
        analyze(model, "self.count = param.amount;")

    def test_unshared_param_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "self.label = param.note;")

    def test_initial_state_has_no_params(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "x = param.amount;", state_name="Idle")


class TestGenerateRules:
    def test_generate_to_self_resolves_class(self, model):
        analysis = analyze(model, "generate W3:W() to self;")
        assert list(analysis.generate_classes.values()) == ["W"]

    def test_generate_args_must_match(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "generate W1:W() to self;")           # missing
        with pytest.raises(AnalysisError):
            analyze(model, "generate W3:W(x: 1) to self;")       # extra

    def test_generate_arg_type_checked(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, 'generate W1:W(amount: "no") to self;')

    def test_generate_scope_mismatch_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, """
                select any g from instances of G;
                generate W3:W() to g;
            """)

    def test_generate_via_target_type(self, model):
        analysis = analyze(model, """
            select any g from instances of G;
            generate G1(n: 1) to g;
        """)
        assert "G" in analysis.generate_classes.values()

    def test_delay_must_be_numeric(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, 'generate W3:W() to self delay "soon";')

    def test_unknown_event_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "generate W99:W() to self;")


class TestNavigationRules:
    def test_single_hop(self, model):
        analysis = analyze(model, "select many gs related by self->G[R1];")
        assert analysis.variable_types["gs"] == InstSetType("G")

    def test_unknown_association_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "select many gs related by self->G[R9];")

    def test_non_participant_hop_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "select many gs related by self->G[R2];")

    def test_reflexive_hop_needs_phrase(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "select one boss related by self->W[R2];")
        analyze(model, "select one boss related by self->W[R2.'manages'];")

    def test_where_selected_typed_by_target_class(self, model):
        analyze(model, """
            select many gs related by self->G[R1]
                where (selected.size > 0);
        """)

    def test_selected_outside_where_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "x = selected;")


class TestRelateRules:
    def test_relate_participants_checked(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, """
                select any w from instances of W;
                relate w to w across R1;
            """)

    def test_reflexive_relate_needs_phrase(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, """
                select any a from instances of W;
                relate self to a across R2;
            """)

    def test_valid_relate(self, model):
        analyze(model, """
            select any g from instances of G;
            relate self to g across R1;
        """)


class TestCallsAndControl:
    def test_bridge_signature_checked(self, model):
        analyze(model, 'LOG::info(message: "x");')
        with pytest.raises(AnalysisError):
            analyze(model, 'LOG::info(text: "x");')
        with pytest.raises(AnalysisError):
            analyze(model, 'LOG::info(message: 3);')

    def test_unknown_bridge_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, 'LOG::warn(message: "x");')

    def test_class_operation_call(self, model):
        analyze(model, "n = W::census();")

    def test_instance_operation_on_class_syntax_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "n = W::bump(x: 1);")

    def test_instance_operation_call(self, model):
        analyze(model, "n = self.bump(x: 2);")

    def test_class_operation_on_instance_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "n = self.census();")

    def test_condition_must_be_boolean(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "if (1) x = 1; end if;")

    def test_foreach_needs_a_set(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, """
                select any w from instances of W;
                for each item in w
                    x = 1;
                end for;
            """)

    def test_return_value_in_state_activity_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "return 3;")

    def test_modulo_requires_integers(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "x = 1.5 % 2;")

    def test_string_concat_allowed(self, model):
        analyze(model, 'self.label = "a" + "b";')

    def test_string_plus_number_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, 'x = "a" + 1;')

    def test_comparison_of_mixed_types_rejected(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, 'x = 1 == "one";')

    def test_cardinality_needs_instances(self, model):
        with pytest.raises(AnalysisError):
            analyze(model, "x = cardinality 5;")
