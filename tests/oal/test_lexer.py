"""Unit tests for the OAL lexer."""

import pytest

from repro.oal import OALSyntaxError, tokenize
from repro.oal.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_names_and_keywords_distinguished(self):
        tokens = tokenize("select foo")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.NAME

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INTEGER
        assert token.text == "42"

    def test_real_literal(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.REAL
        assert token.text == "3.25"

    def test_integer_dot_name_is_attribute_access(self):
        assert texts("x.y") == ["x", ".", "y"]
        # "2.next" must not lex 2. as a real
        tokens = tokenize("2 .next")
        assert tokens[0].kind is TokenKind.INTEGER

    def test_multi_char_operators_greedy(self):
        assert texts("a -> b :: c == d != e <= f >= g") == [
            "a", "->", "b", "::", "c", "==", "d", "!=", "e", "<=",
            "f", ">=", "g",
        ]

    def test_comments_run_to_end_of_line(self):
        assert texts("x // the rest is ignored\ny") == ["x", "y"]

    def test_comment_at_end_of_input(self):
        assert texts("x // trailing") == ["x"]


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello"

    def test_escapes(self):
        token = tokenize(r'"a\nb\tc\"d\\e"')[0]
        assert token.text == 'a\nb\tc"d\\e'

    def test_unterminated_string_raises(self):
        with pytest.raises(OALSyntaxError):
            tokenize('"oops')

    def test_newline_in_string_raises(self):
        with pytest.raises(OALSyntaxError):
            tokenize('"line\nbreak"')

    def test_unknown_escape_raises(self):
        with pytest.raises(OALSyntaxError):
            tokenize(r'"\q"')


class TestErrorsAndPositions:
    def test_unexpected_character_reports_position(self):
        with pytest.raises(OALSyntaxError) as excinfo:
            tokenize("x = @;")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 5

    def test_bare_bang_rejected(self):
        with pytest.raises(OALSyntaxError):
            tokenize("a ! b")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
