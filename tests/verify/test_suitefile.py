"""Suite-file round trips and the CLI workflow over model+suite files."""

import pytest

from repro.cli import main
from repro.models import build_microwave_model
from repro.verify import (
    SuiteFileError,
    check_conformance,
    suite_for,
    suite_from_dict,
    suite_from_json,
    suite_to_dict,
    suite_to_json,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["microwave", "elevator", "checksum"])
    def test_catalog_suites_roundtrip(self, name):
        cases = suite_for(name)
        data = suite_to_dict(cases)
        rebuilt = suite_from_dict(data)
        assert suite_to_dict(rebuilt) == data
        assert [c.name for c in rebuilt] == [c.name for c in cases]
        for original, copy in zip(cases, rebuilt):
            assert copy.steps == original.steps

    def test_rebuilt_suite_still_conformant(self):
        cases = suite_from_json(suite_to_json(suite_for("microwave")))
        report = check_conformance(build_microwave_model(), cases)
        assert report.conformant

    def test_bad_format_rejected(self):
        with pytest.raises(SuiteFileError):
            suite_from_dict({"format": 9, "cases": []})

    def test_unknown_step_rejected(self):
        with pytest.raises(SuiteFileError):
            suite_from_dict({
                "format": 1,
                "cases": [{"name": "x", "steps": [{"do": "teleport"}]}],
            })


class TestCliWorkflow:
    def test_export_then_run(self, tmp_path, capsys):
        model_file = tmp_path / "model.json"
        suite_file = tmp_path / "suite.json"
        assert main(["export", "microwave", "-o", str(model_file)]) == 0
        assert main(["export-suite", "microwave",
                     "-o", str(suite_file)]) == 0
        assert main(["run-suite", str(model_file), str(suite_file)]) == 0
        assert "CONFORMANT" in capsys.readouterr().out

    def test_run_suite_fails_on_divergence(self, tmp_path, capsys):
        import json
        model_file = tmp_path / "model.json"
        suite_file = tmp_path / "suite.json"
        main(["export", "microwave", "-o", str(model_file)])
        main(["export-suite", "microwave", "-o", str(suite_file)])
        # sabotage the model: the first cook second never elapses
        data = json.loads(model_file.read_text())
        for klass in data["components"][0]["classes"]:
            for state in klass["statemachine"]["states"]:
                state["activity"] = state["activity"].replace(
                    "self.cycles_run + 1", "self.cycles_run + 2")
        model_file.write_text(json.dumps(data))
        assert main(["run-suite", str(model_file), str(suite_file)]) == 1
