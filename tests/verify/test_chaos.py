"""Chaos conformance (experiment E8, PR 1 tentpole layer 4)."""

import pytest

from repro.verify import (
    CoSimTarget,
    chaos_build,
    chaos_sweep,
    default_hardware_for,
    reliability_marks,
    run_case,
    suite_for,
)
from repro.models import build_elevator_model, build_microwave_model

RATES = (0.0, 0.02)


class TestDefaults:
    def test_default_hardware_is_a_boundary_receiver(self):
        assert default_hardware_for(build_microwave_model()) == ("PT",)
        assert default_hardware_for(build_elevator_model()) == ("E",)

    def test_reliability_marks_cover_every_class(self):
        model = build_microwave_model()
        component = model.components[0]
        marks = reliability_marks(component, ("PT",))
        for key in component.class_keys:
            path = f"{component.name}.{key}"
            assert marks.get(path, "crc") == "crc16"
            assert marks.get(path, "isCritical") is True
        assert marks.get(f"{component.name}.PT", "isHardware") is True


class TestCoSimTarget:
    def test_suite_passes_on_cosim_without_faults(self):
        build = chaos_build("microwave", protected=False)
        for case in suite_for("microwave"):
            result = run_case(case, CoSimTarget(build))
            assert result.passed, str(result)

    def test_protected_build_also_passes_clean(self):
        build = chaos_build("microwave", protected=True)
        for case in suite_for("microwave"):
            result = run_case(case, CoSimTarget(build))
            assert result.passed, str(result)


class TestChaosSweep:
    @pytest.mark.parametrize("model_name", ["microwave", "elevator"])
    def test_protected_sweep_conformant(self, model_name):
        report = chaos_sweep(model_name, rates=RATES, seed=7,
                             protected=True)
        assert report.conformant, report.render()
        for point in report.points:
            assert point.causality_violations == 0
            assert point.fault_stats.lost == 0
            assert point.fault_stats.critical_lost == 0

    def test_unprotected_sweep_never_crashes(self):
        report = chaos_sweep("microwave", rates=(0.0, 0.02, 0.05),
                             seed=7, protected=False)
        assert not report.crashed, report.render()
        # faults visibly land on the unprotected build
        worst = report.points[-1]
        assert worst.fault_stats.injected > 0
        assert worst.fault_stats.lost > 0

    def test_sweep_reproducible_from_one_seed(self):
        def snapshot(seed):
            report = chaos_sweep("microwave", rates=RATES, seed=seed,
                                 protected=True)
            return [(point.rate, point.fault_stats.as_dict(),
                     [case.passed for case in point.cases])
                    for point in report.points]

        assert snapshot(7) == snapshot(7)
        assert snapshot(7) != snapshot(8)

    def test_zero_rate_point_injects_nothing(self):
        report = chaos_sweep("microwave", rates=(0.0,), seed=7,
                             protected=True)
        assert report.points[0].fault_stats.injected == 0

    def test_render_mentions_verdict(self):
        report = chaos_sweep("microwave", rates=(0.0,), seed=7,
                             protected=True)
        text = report.render()
        assert "CONFORMANT" in text
        assert "microwave" in text

    def test_framing_overhead_visible_on_bus(self):
        protected = chaos_sweep("microwave", rates=(0.0,), seed=7,
                                protected=True)
        plain = chaos_sweep("microwave", rates=(0.0,), seed=7,
                            protected=False)
        assert protected.points[0].bus_bytes > plain.points[0].bus_bytes
        # trailer is 4 bytes on 4-byte payloads: at most 2x, never more
        assert protected.points[0].bus_bytes \
            <= 2 * plain.points[0].bus_bytes
