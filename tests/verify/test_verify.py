"""Tests of the verification harness itself."""

import pytest

from repro.models import build_microwave_model
from repro.verify import (
    AbstractTarget,
    CSimTarget,
    TestCase,
    VSimTarget,
    check_conformance,
    run_case,
    standard_targets,
    suite_for,
)
from repro.verify.runner import run_suite


@pytest.fixture
def model():
    return build_microwave_model()


def cook_case():
    return (
        TestCase("cook")
        .create("oven", "MO", oven_id=1)
        .inject("oven", "MO1", {"seconds": 1})
        .run()
        .expect_state("oven", "Complete")
    )


class TestRunner:
    def test_passing_case(self, model):
        result = run_case(cook_case(), AbstractTarget(model))
        assert result.passed
        assert "PASS" in str(result)

    def test_failing_assertion_collected_not_raised(self, model):
        case = (
            TestCase("wrong-state")
            .create("oven", "MO", oven_id=1)
            .inject("oven", "MO1", {"seconds": 1})
            .run()
            .expect_state("oven", "Idle")
            .expect_attr("oven", "cycles_run", 99)
        )
        result = run_case(case, AbstractTarget(model))
        assert not result.passed
        assert len(result.failures) == 2
        assert "FAIL" in str(result)

    def test_platform_error_captured(self, model):
        case = (
            TestCase("cant-happen")
            .create("oven", "MO", oven_id=1)
            .inject("oven", "MO5")       # can't happen in Idle
            .run()
        )
        result = run_case(case, AbstractTarget(model))
        assert not result.passed
        assert "CantHappenError" in result.error

    def test_unknown_binding_reported(self, model):
        case = TestCase("bad").inject("ghost", "MO1")
        result = run_case(case, AbstractTarget(model))
        assert result.error is not None

    def test_expect_count(self, model):
        case = (
            TestCase("count")
            .create("oven", "MO", oven_id=1)
            .expect_count("MO", 1)
            .expect_count("PT", 0)
        )
        assert run_case(case, AbstractTarget(model)).passed

    def test_advance_step(self, model):
        case = (
            TestCase("timed")
            .create("oven", "MO", oven_id=1)
            .inject("oven", "MO1", {"seconds": 5})
            .advance(2_000_000)
            .expect_state("oven", "Cooking")
        )
        assert run_case(case, AbstractTarget(model)).passed

    def test_run_suite_sequential(self, model):
        cases = [cook_case()]
        results = run_suite(cases, AbstractTarget(model))
        assert all(r.passed for r in results)


class TestTargets:
    def test_standard_targets_cover_three_platforms(self, model):
        targets = standard_targets(model)
        names = [t.name for t in targets]
        assert names == ["abstract-model", "generated-c", "generated-vhdl"]

    def test_same_case_passes_everywhere(self, model):
        for target in standard_targets(model):
            assert run_case(cook_case(), target).passed, target.name

    def test_csim_target_wraps_software_machine(self, model):
        from repro.marks import marks_for_partition
        from repro.mda import ModelCompiler
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, ()))
        target = CSimTarget(build)
        assert run_case(cook_case(), target).passed

    def test_vsim_target_wraps_hardware_machine(self, model):
        from repro.marks import marks_for_partition
        from repro.mda import ModelCompiler
        component = model.components[0]
        build = ModelCompiler(model).compile(
            marks_for_partition(component, tuple(component.class_keys)))
        target = VSimTarget(build, clock_mhz=25)
        assert run_case(cook_case(), target).passed


class TestConformanceReport:
    def test_report_structure(self, model):
        report = check_conformance(model, [cook_case()])
        assert report.conformant
        assert report.pass_rate() == 1.0
        assert len(report.cases) == 1
        assert len(report.cases[0].results) == 3
        assert "CONFORMANT" in report.render()

    def test_divergence_detected(self, model):
        # an intentionally wrong expectation fails on every platform but
        # still counts as non-conformant overall
        bad = (
            TestCase("bad")
            .create("oven", "MO", oven_id=1)
            .inject("oven", "MO1", {"seconds": 1})
            .run()
            .expect_state("oven", "Paused")
        )
        report = check_conformance(model, [bad])
        assert not report.conformant
        assert report.pass_rate() == 0.0

    def test_all_catalog_suites_exist(self):
        for name in ("microwave", "trafficlight", "packetproc",
                     "elevator", "checksum"):
            assert suite_for(name)

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            suite_for("nope")
