"""Tests of the baseline workflows (drift, edit cost, UML surface)."""

import pytest

from repro.baselines import (
    UML15_METACLASSES,
    XTUML_SUBSET,
    compare_layouts,
    generate_churn,
    initial_layout,
    metaclasses_used_by,
    price_all_single_moves,
    price_repartition,
    run_generated_flow,
    run_parallel_teams,
    surface_summary,
    surface_table,
    uml15_total,
)
from repro.baselines.drift import ChurnEvent, apply_churn, copy_layout
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import all_models, build_packetproc_model


@pytest.fixture(scope="module")
def spec():
    model = build_packetproc_model()
    component = model.components[0]
    build = ModelCompiler(model).compile(
        marks_for_partition(component, ("CE", "D")))
    return build.interface


class TestChurn:
    def test_churn_reproducible(self, spec):
        layout = initial_layout(spec)
        assert generate_churn(layout, 20, seed=5) == generate_churn(
            layout, 20, seed=5)
        assert generate_churn(layout, 20, seed=5) != generate_churn(
            layout, 20, seed=6)

    def test_apply_add_and_remove(self, spec):
        layout = initial_layout(spec)
        message = sorted(layout)[0]
        apply_churn(layout, ChurnEvent("add_field", message, "extra", 16))
        assert ("extra", 16) in layout[message][1]
        apply_churn(layout, ChurnEvent("remove_field", message, "extra"))
        assert all(n != "extra" for n, _w in layout[message][1])

    def test_apply_resize_and_renumber(self, spec):
        layout = initial_layout(spec)
        message = sorted(layout)[0]
        first_field = layout[message][1][0][0]
        apply_churn(layout, ChurnEvent("resize_field", message,
                                       first_field, 64))
        assert dict(layout[message][1])[first_field] == 64
        apply_churn(layout, ChurnEvent("renumber", message, new_id=42))
        assert layout[message][0] == 42

    def test_compare_identical_layouts_clean(self, spec):
        layout = initial_layout(spec)
        assert compare_layouts(layout, copy_layout(layout)) == []

    def test_compare_detects_each_defect_kind(self, spec):
        ours = initial_layout(spec)
        theirs = copy_layout(ours)
        message = sorted(ours)[0]
        apply_churn(theirs, ChurnEvent("add_field", message, "sneaky", 8))
        apply_churn(theirs, ChurnEvent("renumber", message, new_id=63))
        defects = compare_layouts(ours, theirs)
        kinds = {d.kind for d in defects}
        assert "missing_field" in kinds
        assert "id_mismatch" in kinds


class TestWorkflows:
    def test_zero_miss_probability_yields_no_defects(self, spec):
        outcome = run_parallel_teams(spec, 30, miss_probability=0.0, seed=1)
        assert outcome.defect_count == 0

    def test_full_miss_probability_maximal_drift(self, spec):
        drifted = run_parallel_teams(spec, 30, miss_probability=1.0, seed=1)
        assert drifted.applied_sw == 0
        assert drifted.applied_hw == 0
        assert drifted.defect_count == 0    # both equally stale -> agree!

    def test_partial_miss_probability_causes_defects(self, spec):
        outcomes = [
            run_parallel_teams(spec, 40, miss_probability=0.3, seed=seed)
            for seed in range(8)
        ]
        assert sum(o.defect_count for o in outcomes) > 0

    def test_generated_flow_never_drifts(self, spec):
        for churn in (1, 10, 50):
            assert run_generated_flow(spec, churn).defect_count == 0

    def test_bad_probability_rejected(self, spec):
        with pytest.raises(ValueError):
            run_parallel_teams(spec, 1, miss_probability=1.5)


class TestEditCost:
    def test_single_move_costs(self):
        model = build_packetproc_model()
        costs = price_all_single_moves(model)
        assert len(costs) == 6     # one per class
        for cost in costs:
            assert cost.mark_flips == 1
            assert cost.impl_first_total > cost.mark_flips

    def test_reverse_move_costs_same_flips(self):
        model = build_packetproc_model()
        there = price_repartition(model, (), ("CE",))
        back = price_repartition(model, ("CE",), ())
        assert there.mark_flips == back.mark_flips == 1

    def test_noop_move_is_free(self):
        model = build_packetproc_model()
        cost = price_repartition(model, ("CE",), ("CE",))
        assert cost.mark_flips == 0
        assert cost.moved_classes == ()
        assert cost.reduction_factor == 1.0

    def test_multi_class_move_scales_linearly_in_flips(self):
        model = build_packetproc_model()
        cost = price_repartition(model, (), ("CE", "CL", "D"))
        assert cost.mark_flips == 3


class TestUmlSurface:
    def test_inventory_is_plausible(self):
        assert 90 < uml15_total() < 200
        assert XTUML_SUBSET <= {
            name for names in UML15_METACLASSES.values() for name in names}

    def test_used_metaclasses_subset_of_profile(self):
        for model in all_models().values():
            used = metaclasses_used_by(model)
            assert used <= XTUML_SUBSET

    def test_checksum_model_uses_creation_metaclasses(self):
        from repro.models import build_checksum_model
        used = metaclasses_used_by(build_checksum_model())
        assert "Operation" in used
        assert "Signal" in used

    def test_table_rows_consistent(self):
        models = all_models()
        rows = surface_table(models)
        for row in rows:
            assert 0 <= row.used_by_models <= row.in_profile <= row.total

    def test_summary_shares(self):
        summary = surface_summary(all_models())
        assert 0 < summary["profile_share_of_uml15"] < 1
        assert summary["profile_metaclasses"] >= summary["used_metaclasses"]
