"""The content-addressed store: atomicity, LRU GC, stats."""

import os
import time

import pytest

from repro.build import ArtifactStore, StoreError


def _key(n: int) -> str:
    return f"{n:064x}"


class TestObjectAccess:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_key(1), b"payload")
        assert store.get(_key(1)) == b"payload"
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(_key(2)) is None
        assert store.stats.misses == 1

    def test_text_helpers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_text(_key(3), "générateur")  # utf-8 survives
        assert store.get_text(_key(3)) == "générateur"

    def test_put_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_key(4), b"same bytes")
        store.put(_key(4), b"same bytes")
        assert store.stats.puts == 1
        assert store.object_count() == 1

    def test_contains_moves_no_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_key(5), b"x")
        assert store.contains(_key(5))
        assert not store.contains(_key(6))
        assert store.stats.lookups == 0

    def test_malformed_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError):
            store.put("../../escape", b"nope")
        with pytest.raises(StoreError):
            store.get("UPPER")

    def test_unusable_root_raises_store_error(self, tmp_path):
        blocker = tmp_path / "file.txt"
        blocker.write_text("in the way")
        with pytest.raises(StoreError):
            ArtifactStore(blocker / "cache")

    def test_no_temp_droppings_after_puts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for n in range(10):
            store.put(_key(n), b"x" * 100)
        leftovers = [p for p in (tmp_path / "objects").rglob(".obj.*")]
        assert leftovers == []


class TestSharedDirectory:
    def test_two_stores_share_objects(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        reader = ArtifactStore(tmp_path)
        writer.put(_key(7), b"shared")
        assert reader.get(_key(7)) == b"shared"


class TestGC:
    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for n in range(4):
            store.put(_key(n), b"x" * 100)
        # age objects 0..3 oldest-first, then refresh 0 by reading it
        now = time.time()
        for n in range(4):
            os.utime(store._path(_key(n)), (now - 100 + n, now - 100 + n))
        store.get(_key(0))
        evicted = store.gc(max_bytes=250)
        assert evicted == 2
        assert store.stats.evictions == 2
        assert store.contains(_key(0))       # refreshed — survived
        assert not store.contains(_key(1))   # oldest unread — evicted
        assert not store.contains(_key(2))
        assert store.contains(_key(3))

    def test_put_triggers_gc_when_budget_configured(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=250)
        for n in range(4):
            store.put(_key(n), b"x" * 100)
            time.sleep(0.01)  # distinct mtimes on coarse filesystems
        assert store.size_bytes() <= 250
        assert store.stats.evictions >= 1

    def test_gc_without_budget_is_noop(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(_key(1), b"x")
        assert store.gc() == 0
        assert store.contains(_key(1))

    def test_clear_drops_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for n in range(3):
            store.put(_key(n), b"x")
        assert store.clear() == 3
        assert store.object_count() == 0
