"""Incremental recompilation — byte-identity and strict reuse.

The acceptance bar: a warm-cache single-mark retarget produces artifacts
byte-identical to a cold full build while recompiling strictly fewer
classes.  Checked here over every catalog model, not just one.
"""

import pytest

from repro.build import (
    ArtifactStore,
    IncrementalCompiler,
    clear_manifest_memo,
)
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import all_models, build_model


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_manifest_memo()
    yield
    clear_manifest_memo()


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(all_models()))
    def test_cold_incremental_matches_model_compiler(self, name, tmp_path):
        model = build_model(name)
        component = model.components[0]
        hardware = (sorted(component.class_keys)[0],)
        marks = marks_for_partition(component, hardware)
        gold = ModelCompiler(model).compile(marks)
        cached = IncrementalCompiler(
            model, store=ArtifactStore(tmp_path)).compile(marks)
        assert cached.artifacts == gold.artifacts
        assert cached.rules_applied == gold.rules_applied
        assert cached.partition.hardware_classes == \
            gold.partition.hardware_classes

    @pytest.mark.parametrize("name", sorted(all_models()))
    def test_warm_retarget_matches_cold_build(self, name, tmp_path):
        model = build_model(name)
        component = model.components[0]
        keys = sorted(component.class_keys)
        store = ArtifactStore(tmp_path)
        compiler = IncrementalCompiler(model, store=store)
        compiler.compile(marks_for_partition(component, (keys[0],)))
        # the paper's operation: move the mark to another class
        moved = marks_for_partition(component, (keys[-1],))
        warm = compiler.compile(moved)
        gold = ModelCompiler(model).compile(moved)
        assert warm.artifacts == gold.artifacts

    def test_warm_build_survives_process_restart(self, tmp_path):
        """A fresh compiler over the same store (as a new process would
        build) serves the identical bytes fully from cache."""
        model = build_model("microwave")
        component = model.components[0]
        marks = marks_for_partition(component, ("PT",))
        store = ArtifactStore(tmp_path)
        IncrementalCompiler(model, store=store).compile(marks)

        clear_manifest_memo()  # nothing left in process memory
        fresh_store = ArtifactStore(tmp_path)
        fresh = IncrementalCompiler(build_model("microwave"),
                                    store=fresh_store)
        warm = fresh.compile(marks)
        assert warm.artifacts == \
            ModelCompiler(model).compile(marks).artifacts
        assert fresh.last_stats.fully_cached
        assert fresh.last_stats.manifest_reused


class TestStrictReuse:
    def test_single_mark_retarget_recompiles_strictly_fewer(self, tmp_path):
        model = build_model("elevator")
        component = model.components[0]
        store = ArtifactStore(tmp_path)
        compiler = IncrementalCompiler(model, store=store)

        compiler.compile(marks_for_partition(component, ()))
        cold = compiler.last_stats
        assert cold.classes_compiled == cold.classes_total
        assert cold.classes_reused == 0

        compiler.compile(marks_for_partition(component, ("E",)))
        warm = compiler.last_stats
        # only the moved class was recompiled (as hardware now)
        assert warm.classes_compiled == 1
        assert warm.classes_reused == warm.classes_total - 1
        assert warm.classes_compiled < cold.classes_compiled
        assert warm.manifest_reused

    def test_moving_the_mark_back_is_fully_cached(self, tmp_path):
        model = build_model("elevator")
        component = model.components[0]
        compiler = IncrementalCompiler(
            model, store=ArtifactStore(tmp_path))
        compiler.compile(marks_for_partition(component, ()))
        compiler.compile(marks_for_partition(component, ("E",)))
        compiler.compile(marks_for_partition(component, ()))
        assert compiler.last_stats.fully_cached

    def test_store_counters_reported_per_compile(self, tmp_path):
        model = build_model("checksum")
        component = model.components[0]
        compiler = IncrementalCompiler(
            model, store=ArtifactStore(tmp_path))
        compiler.compile(marks_for_partition(component, ()))
        first = compiler.last_stats.store
        assert first.misses > 0 and first.puts > 0
        compiler.compile(marks_for_partition(component, ()))
        second = compiler.last_stats.store
        assert second.misses == 0 and second.hits > 0

    def test_no_store_still_memoizes_manifest(self):
        model = build_model("microwave")
        component = model.components[0]
        compiler = IncrementalCompiler(model)
        compiler.compile(marks_for_partition(component, ()))
        assert not compiler.last_stats.manifest_reused
        compiler.compile(marks_for_partition(component, ("PT",)))
        assert compiler.last_stats.manifest_reused
        # without a store everything is emitted fresh
        assert compiler.last_stats.classes_compiled == \
            compiler.last_stats.classes_total


class TestCachedBuildsBehave:
    def test_cached_build_drives_the_simulators(self, tmp_path):
        """A cache-served Build is a real Build: targets execute it."""
        from repro.verify import check_conformance, suite_for

        store = ArtifactStore(tmp_path)
        model = build_model("checksum")
        warmup = check_conformance(model, suite_for("checksum"),
                                   store=store)
        assert warmup.conformant, warmup.render()
        cached = check_conformance(model, suite_for("checksum"),
                                   store=store)
        assert cached.conformant, cached.render()
        assert store.stats.hits > 0
