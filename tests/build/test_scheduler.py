"""The batch scheduler: determinism, parallel safety, crash containment."""

import pytest

from repro.build import (
    BatchJob,
    batch_to_csv,
    catalog_matrix,
    clear_manifest_memo,
    render_batch_table,
    render_cache_summary,
    run_batch,
    write_batch_csv,
)

SMALL = ("microwave", "checksum")


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_manifest_memo()
    yield
    clear_manifest_memo()


class TestMatrix:
    def test_matrix_covers_baseline_each_class_and_all_hw(self):
        matrix = catalog_matrix(("microwave",))
        variants = [job.variant for job in matrix]
        assert variants == ["sw-only", "hw=MO", "hw=PT", "hw-all"]

    def test_unknown_model_raises_with_catalog(self):
        with pytest.raises(KeyError, match="microwave"):
            catalog_matrix(("nope",))

    def test_full_matrix_spans_catalog(self):
        matrix = catalog_matrix()
        assert {job.model for job in matrix} >= {
            "microwave", "trafficlight", "packetproc", "elevator",
            "checksum"}


class TestRunBatch:
    def test_inline_batch_is_deterministic(self, tmp_path):
        matrix = catalog_matrix(SMALL)
        report = run_batch(matrix, jobs=1, cache_dir=str(tmp_path))
        assert [r.job for r in report.results] == matrix
        assert not report.failed

    def test_parallel_results_in_matrix_order_with_same_digests(
            self, tmp_path):
        matrix = catalog_matrix(SMALL)
        inline = run_batch(matrix, jobs=1, cache_dir=str(tmp_path / "a"))
        parallel = run_batch(matrix, jobs=3,
                             cache_dir=str(tmp_path / "b"))
        assert [r.job for r in parallel.results] == matrix
        assert [r.digest for r in parallel.results] == \
            [r.digest for r in inline.results]

    def test_second_run_is_fully_cached(self, tmp_path):
        matrix = catalog_matrix(("microwave",))
        run_batch(matrix, jobs=1, cache_dir=str(tmp_path))
        again = run_batch(matrix, jobs=1, cache_dir=str(tmp_path))
        assert again.hit_rate >= 0.9
        assert again.classes_compiled == 0

    def test_no_cache_runs_without_a_store(self, tmp_path):
        matrix = catalog_matrix(("checksum",))
        report = run_batch(matrix, jobs=1, use_cache=False)
        assert not report.failed
        assert report.store.lookups == 0

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            run_batch([], jobs=0)

    def test_failing_job_contained_not_fatal(self, tmp_path):
        matrix = [BatchJob("microwave", "sw-only", ()),
                  BatchJob("ghost-model", "sw-only", ())]
        report = run_batch(matrix, jobs=1, cache_dir=str(tmp_path))
        assert report.results[0].ok
        assert not report.results[1].ok
        assert "ghost-model" in report.results[1].error


class TestCrashContainment:
    def test_worker_crash_fails_one_job_not_the_batch(
            self, tmp_path, monkeypatch):
        matrix = catalog_matrix(SMALL)
        poisoned = matrix[2]
        monkeypatch.setenv("REPRO_BUILD_CRASH", poisoned.label)
        report = run_batch(matrix, jobs=2, cache_dir=str(tmp_path))
        assert report.worker_failures >= 1
        assert [r.job for r in report.results] == matrix
        failed = report.failed
        assert [r.job for r in failed] == [poisoned]
        assert "crashed" in failed[0].error
        # every innocent job recovered
        assert all(r.ok for r in report.results if r.job != poisoned)


class TestReporting:
    def test_table_summary_and_csv_agree(self, tmp_path):
        matrix = catalog_matrix(("checksum",))
        report = run_batch(matrix, jobs=1, cache_dir=str(tmp_path))
        table = render_batch_table(report)
        assert "checksum" in table and "sw-only" in table
        summary = render_cache_summary(report)
        assert "hit rate" in summary and "worker crash" in summary
        csv_text = batch_to_csv(report)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("model,variant,ok")
        assert len(lines) == len(matrix) + 1

    def test_csv_written_to_disk(self, tmp_path):
        matrix = catalog_matrix(("checksum",))
        report = run_batch(matrix, jobs=1, cache_dir=str(tmp_path / "c"))
        path = write_batch_csv(report, tmp_path / "batch.csv")
        assert (tmp_path / "batch.csv").read_text() == batch_to_csv(report)
        assert path.endswith("batch.csv")
