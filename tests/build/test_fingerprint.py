"""Fingerprint stability — the correctness bedrock of the build cache.

A wrong-stable hash serves stale artifacts; a wrong-unstable hash
destroys the cache.  These tests pin both directions: identical inputs
hash identically across rebuild, insertion order, equivalent mark files
and *process restarts* (a subprocess with a different hash seed), and
any single mark flip or model edit changes the key.
"""

import os
import subprocess
import sys

from repro.build import (
    build_fingerprint,
    class_dependency_key,
    marks_fingerprint,
    model_fingerprint,
    rules_fingerprint,
)
from repro.marks import MarkSet, marks_for_partition
from repro.mda.rules import RuleSet
from repro.models import build_model


def test_model_fingerprint_stable_across_rebuilds():
    assert model_fingerprint(build_model("microwave")) == \
        model_fingerprint(build_model("microwave"))


def test_model_fingerprint_distinguishes_models():
    fps = {model_fingerprint(build_model(name))
           for name in ("microwave", "elevator", "checksum")}
    assert len(fps) == 3


def test_marks_fingerprint_ignores_insertion_order():
    a = MarkSet()
    a.set("control.MO", "isHardware", True)
    a.set("control.PT", "clock_mhz", 150)
    b = MarkSet()
    b.set("control.PT", "clock_mhz", 150)
    b.set("control.MO", "isHardware", True)
    assert marks_fingerprint(a) == marks_fingerprint(b)


def test_marks_fingerprint_equivalent_mark_files():
    # same marking, different comments / line order / spacing
    text_a = ("# partition decision\n"
              "control.MO isHardware = true\n"
              "control.PT clock_mhz = 150\n")
    text_b = ("control.PT clock_mhz =   150\n"
              "\n"
              "# reviewed 2026-08-05\n"
              "control.MO isHardware = yes\n")
    assert marks_fingerprint(MarkSet.loads(text_a)) == \
        marks_fingerprint(MarkSet.loads(text_b))


def test_any_single_mark_flip_changes_the_key():
    component = build_model("microwave").components[0]
    base = marks_for_partition(component, ("PT",))
    base_fp = marks_fingerprint(base)
    for key in component.class_keys:
        flipped = base.copy()
        path = f"{component.name}.{key}"
        flipped.set(path, "isHardware",
                    not flipped.get(path, "isHardware"))
        assert marks_fingerprint(flipped) != base_fp, key


def test_value_type_participates_in_the_hash():
    a = MarkSet()
    a.set("control.MO", "isHardware", True)
    b = MarkSet()
    b.set("control.MO", "processor", "True")
    assert marks_fingerprint(a) != marks_fingerprint(b)


def test_rules_fingerprint_tracks_rule_order():
    standard = RuleSet.standard()
    reversed_rules = RuleSet(list(reversed(standard.rules)))
    assert rules_fingerprint(standard) != rules_fingerprint(reversed_rules)


def test_build_fingerprint_stable_across_process_restarts():
    """The same inputs hash identically in a fresh interpreter with a
    different PYTHONHASHSEED — nothing leaks dict/set iteration order."""
    script = (
        "from repro.build import build_fingerprint\n"
        "from repro.marks import marks_for_partition\n"
        "from repro.models import build_model\n"
        "model = build_model('elevator')\n"
        "component = model.components[0]\n"
        "marks = marks_for_partition(component, ('E',))\n"
        "print(build_fingerprint(model, marks))\n"
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "12345"
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env=env, check=True, cwd=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )
    model = build_model("elevator")
    component = model.components[0]
    marks = marks_for_partition(component, ("E",))
    assert out.stdout.strip() == build_fingerprint(model, marks)


class TestClassDependencyKeys:
    def _keys(self, hardware):
        model = build_model("elevator")
        component = model.components[0]
        marks = marks_for_partition(component, hardware)
        model_fp = model_fingerprint(model)
        rules_fp = rules_fingerprint(RuleSet.standard())
        return {
            key: class_dependency_key(
                model_fp, rules_fp, component.name, key,
                "vhdl" if key in hardware else "c", marks)
            for key in component.class_keys
        }

    def test_moving_one_mark_touches_only_the_moved_class(self):
        before = self._keys(("E",))
        after = self._keys(("CA",))
        changed = {key for key in before if before[key] != after[key]}
        assert changed == {"E", "CA"}

    def test_clock_mark_touches_only_its_class(self):
        model = build_model("elevator")
        component = model.components[0]
        marks = marks_for_partition(component, ("E",))
        retimed = marks.copy()
        retimed.set(f"{component.name}.E", "clock_mhz", 250)
        model_fp = model_fingerprint(model)
        rules_fp = rules_fingerprint(RuleSet.standard())

        def key_of(marks, klass, target):
            return class_dependency_key(
                model_fp, rules_fp, component.name, klass, target, marks)

        assert key_of(marks, "E", "vhdl") != key_of(retimed, "E", "vhdl")
        assert key_of(marks, "B", "c") == key_of(retimed, "B", "c")
