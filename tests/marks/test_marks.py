"""Unit tests for the marking model (sticky notes)."""

import pytest

from repro.marks import Mark, MarkError, MarkSet, STANDARD_MARKS


class TestMarkSet:
    def test_defaults_from_vocabulary(self):
        marks = MarkSet()
        assert marks.get("c.MO", "isHardware") is False
        assert marks.get("c.MO", "clock_mhz") == 100
        assert marks.get("c.MO", "processor") == "cpu0"

    def test_set_and_get(self):
        marks = MarkSet()
        marks.set("c.MO", "isHardware", True)
        assert marks.get("c.MO", "isHardware") is True
        assert marks.is_explicit("c.MO", "isHardware")
        assert not marks.is_explicit("c.PT", "isHardware")

    def test_unknown_mark_name_rejected(self):
        with pytest.raises(MarkError):
            MarkSet().set("c.MO", "mystery", 1)
        with pytest.raises(MarkError):
            MarkSet().get("c.MO", "mystery")

    def test_wrong_value_type_rejected(self):
        marks = MarkSet()
        with pytest.raises(MarkError):
            marks.set("c.MO", "isHardware", "yes")
        with pytest.raises(MarkError):
            marks.set("c.MO", "clock_mhz", "fast")

    def test_one_value_per_element_and_name(self):
        marks = MarkSet()
        marks.set("c.MO", "clock_mhz", 100)
        marks.set("c.MO", "clock_mhz", 200)
        assert marks.get("c.MO", "clock_mhz") == 200
        assert len(marks) == 1

    def test_clear(self):
        marks = MarkSet()
        marks.set("c.MO", "isHardware", True)
        assert marks.clear("c.MO", "isHardware") is True
        assert marks.get("c.MO", "isHardware") is False
        assert marks.clear("c.MO", "isHardware") is False

    def test_marks_on_element(self):
        marks = MarkSet()
        marks.set("c.MO", "isHardware", True)
        marks.set("c.MO", "clock_mhz", 50)
        marks.set("c.PT", "isHardware", False)
        on_mo = marks.marks_on("c.MO")
        assert {m.name for m in on_mo} == {"isHardware", "clock_mhz"}

    def test_copy_is_independent(self):
        marks = MarkSet()
        marks.set("c.MO", "isHardware", True)
        duplicate = marks.copy()
        duplicate.set("c.MO", "isHardware", False)
        assert marks.get("c.MO", "isHardware") is True


class TestMarkingFiles:
    def test_roundtrip(self):
        marks = MarkSet()
        marks.set("c.MO", "isHardware", True)
        marks.set("c.MO", "clock_mhz", 250)
        marks.set("c.PT", "processor", "dsp1")
        text = marks.dumps()
        reloaded = MarkSet.loads(text)
        assert reloaded.marks == marks.marks

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a marking file
        c.MO isHardware = true

        c.PT clock_mhz = 75
        """
        marks = MarkSet.loads(text)
        assert marks.get("c.MO", "isHardware") is True
        assert marks.get("c.PT", "clock_mhz") == 75

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("false", False), ("1", True), ("no", False),
    ])
    def test_boolean_spellings(self, raw, expected):
        marks = MarkSet.loads(f"c.MO isHardware = {raw}")
        assert marks.get("c.MO", "isHardware") is expected

    def test_bad_boolean_rejected(self):
        with pytest.raises(MarkError):
            MarkSet.loads("c.MO isHardware = maybe")

    def test_bad_integer_rejected(self):
        with pytest.raises(MarkError):
            MarkSet.loads("c.MO clock_mhz = fast")

    def test_malformed_line_rejected(self):
        with pytest.raises(MarkError):
            MarkSet.loads("c.MO isHardware true")
        with pytest.raises(MarkError):
            MarkSet.loads("c.MO extra words isHardware = true")

    def test_vocabulary_is_documented(self):
        assert any(d.name == "isHardware" for d in STANDARD_MARKS)
        for definition in STANDARD_MARKS:
            assert definition.description

    def test_mark_str(self):
        assert str(Mark("c.MO", "isHardware", True)) == "c.MO isHardware = True"
