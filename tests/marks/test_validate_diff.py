"""Unit tests for mark validation and mark-set diffing."""

import pytest

from repro.marks import (
    ChangeKind,
    MarkError,
    MarkSet,
    diff_marks,
    partition_change_cost,
    validate_marks,
)
from repro.models import build_microwave_model


@pytest.fixture(scope="module")
def model():
    return build_microwave_model()


class TestValidation:
    def test_valid_marks_pass(self, model):
        marks = MarkSet()
        marks.set("control.MO", "isHardware", True)
        marks.set("control.MO", "clock_mhz", 200)
        assert validate_marks(marks, model) == []

    def test_unknown_element_reported(self, model):
        marks = MarkSet()
        marks.set("control.GHOST", "isHardware", True)
        violations = validate_marks(marks, model)
        assert any("does not exist" in str(v) for v in violations)

    def test_component_level_marks_allowed(self, model):
        marks = MarkSet()
        marks.set("control", "bus", "axi0")
        assert validate_marks(marks, model) == []

    def test_clock_range_checked(self, model):
        marks = MarkSet()
        marks.set("control.MO", "isHardware", True)
        marks.set("control.MO", "clock_mhz", 0)
        violations = validate_marks(marks, model)
        assert any("outside" in str(v) for v in violations)

    def test_clock_on_software_class_reported(self, model):
        marks = MarkSet()
        marks.set("control.MO", "clock_mhz", 100)   # but not isHardware
        violations = validate_marks(marks, model)
        assert any("only applies" in str(v) for v in violations)

    def test_queue_depth_positive(self, model):
        marks = MarkSet()
        marks.set("control.MO", "queue_depth", 0)
        violations = validate_marks(marks, model)
        assert any("at least 1" in str(v) for v in violations)

    def test_strict_raises(self, model):
        marks = MarkSet()
        marks.set("nowhere.XX", "isHardware", True)
        with pytest.raises(MarkError):
            validate_marks(marks, model, strict=True)


class TestComponentLevelMarks:
    """Class-only marks on a component path used to be swallowed by a
    silent ``pass``: accepted, validated against nothing, and doing
    nothing.  They are structured diagnostics now."""

    def test_class_only_mark_on_component_reported(self, model):
        marks = MarkSet()
        marks.set("control", "isHardware", True)  # moves nothing to HW
        violations = validate_marks(marks, model)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.element_path == "control"
        assert violation.mark_name == "isHardware"
        assert "targets a class" in violation.message

    @pytest.mark.parametrize("name,value", [
        ("isHardware", True),
        ("clock_mhz", 200),
        ("unroll_loops", True),
        ("crc", "crc16"),
        ("maxRetries", 3),
        ("retryBackoffNs", 1000),
        ("isCritical", True),
    ])
    def test_every_class_only_mark_is_rejected_at_component_level(
            self, model, name, value):
        marks = MarkSet()
        marks.set("control", name, value)
        violations = validate_marks(marks, model)
        assert any(v.mark_name == name and "targets a class" in v.message
                   for v in violations)

    @pytest.mark.parametrize("name,value", [
        ("bus", "axi0"),
        ("processor", "cpu1"),
        ("priority", 2),
        ("queue_depth", 8),
    ])
    def test_architecture_defaults_stay_component_valid(
            self, model, name, value):
        marks = MarkSet()
        marks.set("control", name, value)
        assert validate_marks(marks, model) == []

    def test_same_mark_on_a_class_is_still_fine(self, model):
        marks = MarkSet()
        marks.set("control.MO", "isHardware", True)
        assert validate_marks(marks, model) == []

    def test_strict_mode_raises_on_component_misplacement(self, model):
        marks = MarkSet()
        marks.set("control", "crc", "crc8")
        with pytest.raises(MarkError, match="targets a class"):
            validate_marks(marks, model, strict=True)


class TestReliabilityValidation:
    """The protection vocabulary (crc / maxRetries / ...) stays honest."""

    def test_valid_reliability_marks_pass(self, model):
        marks = MarkSet()
        marks.set("control.PT", "crc", "crc16")
        marks.set("control.PT", "maxRetries", 3)
        marks.set("control.PT", "retryBackoffNs", 2000)
        marks.set("control.PT", "isCritical", True)
        assert validate_marks(marks, model) == []

    def test_unknown_crc_kind_reported(self, model):
        marks = MarkSet()
        marks.set("control.PT", "crc", "parity")
        violations = validate_marks(marks, model)
        assert any("not one of" in str(v) for v in violations)

    def test_retry_budget_range_checked(self, model):
        marks = MarkSet()
        marks.set("control.PT", "crc", "crc8")
        marks.set("control.PT", "maxRetries", 17)
        violations = validate_marks(marks, model)
        assert any("outside 0..16" in str(v) for v in violations)

    def test_retries_without_crc_reported(self, model):
        marks = MarkSet()
        marks.set("control.PT", "maxRetries", 2)   # but crc defaults "none"
        violations = validate_marks(marks, model)
        assert any("requires a crc" in str(v) for v in violations)

    def test_backoff_must_be_positive(self, model):
        marks = MarkSet()
        marks.set("control.PT", "crc", "crc16")
        marks.set("control.PT", "retryBackoffNs", 0)
        violations = validate_marks(marks, model)
        assert any("at least 1 ns" in str(v) for v in violations)

    def test_critical_without_crc_reported(self, model):
        marks = MarkSet()
        marks.set("control.PT", "isCritical", True)
        violations = validate_marks(marks, model)
        assert any("needs a crc" in str(v) for v in violations)

    def test_zero_retries_with_crc_is_fine(self, model):
        # detect-only protection: CRC rejects, nothing retransmits
        marks = MarkSet()
        marks.set("control.PT", "crc", "crc8")
        marks.set("control.PT", "maxRetries", 0)
        assert validate_marks(marks, model) == []


class TestDiff:
    def test_added_removed_changed(self):
        old = MarkSet()
        old.set("c.A", "isHardware", True)
        old.set("c.B", "clock_mhz", 100)
        new = MarkSet()
        new.set("c.A", "isHardware", False)       # changed
        new.set("c.C", "isHardware", True)        # added
        changes = diff_marks(old, new)            # B's mark removed
        kinds = {(c.element_path, c.kind) for c in changes}
        assert ("c.A", ChangeKind.CHANGED) in kinds
        assert ("c.B", ChangeKind.REMOVED) in kinds
        assert ("c.C", ChangeKind.ADDED) in kinds

    def test_identical_sets_diff_empty(self):
        marks = MarkSet()
        marks.set("c.A", "isHardware", True)
        assert diff_marks(marks, marks.copy()) == []

    def test_partition_change_cost_counts_only_is_hardware(self):
        old = MarkSet()
        old.set("c.A", "isHardware", False)
        old.set("c.A", "clock_mhz", 100)
        new = MarkSet()
        new.set("c.A", "isHardware", True)
        new.set("c.A", "clock_mhz", 400)
        assert partition_change_cost(old, new) == 1

    def test_change_rendering(self):
        old = MarkSet()
        new = MarkSet()
        new.set("c.A", "isHardware", True)
        change = diff_marks(old, new)[0]
        assert str(change).startswith("+ c.A isHardware")
