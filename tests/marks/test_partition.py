"""Unit tests for partition derivation and signal-flow discovery."""

from repro.marks import (
    MarkSet,
    all_partitions,
    derive_partition,
    marks_for_partition,
    signal_flows,
)
from repro.models import build_packetproc_model


def model_and_component():
    model = build_packetproc_model()
    return model, model.components[0]


class TestSignalFlows:
    def test_pipeline_flows_discovered(self):
        model, component = model_and_component()
        flows = signal_flows(model, component)
        pairs = {(f.sender_class, f.receiver_class, f.event_label)
                 for f in flows}
        assert ("M", "CL", "CL1") in pairs
        assert ("CL", "CE", "CE1") in pairs
        assert ("CL", "D", "D1") in pairs
        assert ("CE", "D", "D1") in pairs
        assert ("D", "ST", "ST1") in pairs

    def test_self_flows_included(self):
        model, component = model_and_component()
        flows = signal_flows(model, component)
        assert any(f.sender_class == f.receiver_class for f in flows)

    def test_flows_deterministic_order(self):
        model, component = model_and_component()
        assert signal_flows(model, component) == signal_flows(model, component)


class TestDerivePartition:
    def test_all_software_by_default(self):
        model, component = model_and_component()
        partition = derive_partition(model, component, MarkSet())
        assert partition.is_pure_software
        assert partition.boundary_flows == ()

    def test_marked_classes_go_hardware(self):
        model, component = model_and_component()
        marks = MarkSet()
        marks.set("soc.CE", "isHardware", True)
        partition = derive_partition(model, component, marks)
        assert partition.hardware_classes == ("CE",)
        assert partition.side_of("CE") == "hw"
        assert partition.side_of("M") == "sw"

    def test_boundary_is_cross_side_flows_only(self):
        model, component = model_and_component()
        marks = marks_for_partition(component, ("CE", "D"))
        partition = derive_partition(model, component, marks)
        boundary = {(f.sender_class, f.receiver_class)
                    for f in partition.boundary_flows}
        assert boundary == {("CL", "CE"), ("CL", "D"), ("D", "ST")}
        internal = {(f.sender_class, f.receiver_class)
                    for f in partition.internal_flows}
        assert ("CE", "D") in internal    # both in hardware

    def test_describe_renders(self):
        model, component = model_and_component()
        marks = marks_for_partition(component, ("CE",))
        text = derive_partition(model, component, marks).describe()
        assert "hardware: CE" in text

    def test_side_of_unknown_class_raises(self):
        model, component = model_and_component()
        partition = derive_partition(model, component, MarkSet())
        import pytest
        with pytest.raises(KeyError):
            partition.side_of("XX")


class TestPartitionEnumeration:
    def test_all_partitions_count(self):
        _model, component = model_and_component()
        candidates = all_partitions(component)
        assert len(candidates) == 2 ** len(component.class_keys)
        assert candidates[0] == ()

    def test_marks_for_partition_are_explicit_everywhere(self):
        _model, component = model_and_component()
        marks = marks_for_partition(component, ("CE",))
        for key in component.class_keys:
            assert marks.is_explicit(f"soc.{key}", "isHardware")

    def test_marks_for_partition_preserves_base(self):
        _model, component = model_and_component()
        base = MarkSet()
        base.set("soc.CE", "clock_mhz", 400)
        marks = marks_for_partition(component, ("CE",), base=base)
        assert marks.get("soc.CE", "clock_mhz") == 400
        assert base.get("soc.CE", "isHardware") is False   # base untouched
