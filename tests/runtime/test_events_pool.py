"""Unit tests for signal instances and the event pool."""

from repro.runtime import EventPool, InstanceQueue, SignalInstance


def signal(seq, target=1, sender=None, creation=False, label="EV"):
    return SignalInstance(
        sequence=seq, label=label, class_key="W", params={},
        target_handle=None if creation else target, sender_handle=sender,
        is_creation=creation,
    )


class TestInstanceQueue:
    def test_fifo_for_external_events(self):
        queue = InstanceQueue()
        queue.push(signal(1))
        queue.push(signal(2))
        assert queue.pop().sequence == 1
        assert queue.pop().sequence == 2

    def test_self_events_jump_the_queue(self):
        queue = InstanceQueue()
        queue.push(signal(1, sender=9))
        queue.push(signal(2, target=1, sender=1))   # self-directed
        assert queue.pop().sequence == 2
        assert queue.pop().sequence == 1

    def test_self_events_fifo_among_themselves(self):
        queue = InstanceQueue()
        queue.push(signal(1, target=1, sender=1))
        queue.push(signal(2, target=1, sender=1))
        assert queue.pop().sequence == 1

    def test_peek_does_not_consume(self):
        queue = InstanceQueue()
        queue.push(signal(5))
        assert queue.peek().sequence == 5
        assert len(queue) == 1


class TestEventPool:
    def test_ready_handles_sorted(self):
        pool = EventPool()
        pool.push_ready(signal(1, target=9))
        pool.push_ready(signal(2, target=3))
        assert pool.ready_handles() == (3, 9)

    def test_creation_events_separate(self):
        pool = EventPool()
        pool.push_ready(signal(1, creation=True))
        assert pool.has_ready_creation()
        assert pool.ready_handles() == ()
        assert pool.pop_creation().sequence == 1

    def test_delayed_events_release_at_due_time(self):
        pool = EventPool()
        pool.push_delayed(signal(1), due_time=100)
        pool.push_delayed(signal(2), due_time=50)
        assert pool.ready_count == 0
        assert pool.next_due_time() == 50
        assert pool.release_due(60) == 1
        assert pool.ready_count == 1
        assert pool.release_due(100) == 1

    def test_cancel_delayed_by_predicate(self):
        pool = EventPool()
        pool.push_delayed(signal(1, label="T1"), 10)
        pool.push_delayed(signal(2, label="T2"), 20)
        removed = pool.cancel_delayed(lambda s: s.label == "T1")
        assert removed == 1
        assert pool.next_due_time() == 20

    def test_drop_instance_discards_ready_and_delayed(self):
        pool = EventPool()
        pool.push_ready(signal(1, target=4))
        pool.push_ready(signal(2, target=4))
        pool.push_delayed(signal(3, target=4), 10)
        pool.push_ready(signal(4, target=5))
        assert pool.drop_instance(4) == 3
        assert pool.ready_handles() == (5,)
        assert pool.is_idle() is False

    def test_idle(self):
        pool = EventPool()
        assert pool.is_idle()
        pool.push_delayed(signal(1), 10)
        assert not pool.is_idle()
