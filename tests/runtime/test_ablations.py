"""Ablations: the profile's queue rules are load-bearing, not decoration.

DESIGN.md calls out the self-directed-event priority rule for ablation.
The packet-processor MAC relies on it: its M2/M3 pipeline steps must
outrank queued M1 packets or a back-to-back burst hits ``Checking`` with
an unexpected M1.  These tests show the rule's absence breaks a
well-formed model, and its presence is exactly what fixes it.
"""

import pytest

from repro.models import build_packetproc_model, packetproc
from repro.runtime import CantHappenError, Simulation


def burst(sim, packets=3):
    handles = packetproc.populate(sim)
    # back-to-back: every M1 is queued before the MAC dispatches any
    packetproc.inject_packets(sim, handles["M"], packets, length=64,
                              spacing=0)
    return handles


class TestSelfPriorityAblation:
    def test_with_rule_bursts_are_fine(self):
        sim = Simulation(build_packetproc_model())
        handles = burst(sim)
        sim.run_to_quiescence()
        assert sim.read_attribute(handles["ST"], "packets") == 3

    def test_without_rule_the_model_breaks(self):
        sim = Simulation(build_packetproc_model(), self_priority=False)
        burst(sim)
        with pytest.raises(CantHappenError):
            sim.run_to_quiescence()

    def test_without_rule_single_packets_still_work(self):
        # with one packet in flight there is nothing to outrank, so the
        # ablated queue behaves identically — the rule matters exactly
        # when concurrency does
        sim = Simulation(build_packetproc_model(), self_priority=False)
        handles = packetproc.populate(sim)
        packetproc.inject_packets(sim, handles["M"], 1, length=64)
        sim.run_to_quiescence()
        assert sim.read_attribute(handles["ST"], "packets") == 1

    def test_spaced_arrivals_mask_the_ablation(self):
        # generous spacing lets each packet drain before the next lands;
        # the bug is a race, and races need load
        sim = Simulation(build_packetproc_model(), self_priority=False)
        handles = packetproc.populate(sim)
        packetproc.inject_packets(sim, handles["M"], 3, length=64,
                                  spacing=10_000)
        sim.run_to_quiescence()
        assert sim.read_attribute(handles["ST"], "packets") == 3
