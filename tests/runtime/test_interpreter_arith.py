"""C arithmetic semantics shared by the abstract and target runtimes."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import c_div, c_mod
from repro.oal.errors import OALRuntimeError


class TestCDiv:
    @pytest.mark.parametrize("a,b,expected", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3),
        (6, 3, 2), (0, 5, 0), (1, 2, 0), (-1, 2, 0),
    ])
    def test_truncates_toward_zero(self, a, b, expected):
        assert c_div(a, b) == expected

    def test_division_by_zero_raises(self):
        with pytest.raises(OALRuntimeError):
            c_div(1, 0)


class TestCMod:
    @pytest.mark.parametrize("a,b,expected", [
        (7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1),
        (6, 3, 0), (0, 5, 0),
    ])
    def test_sign_follows_dividend(self, a, b, expected):
        assert c_mod(a, b) == expected

    def test_remainder_by_zero_raises(self):
        with pytest.raises(OALRuntimeError):
            c_mod(1, 0)


class TestCSemantics:
    @given(st.integers(-10**9, 10**9),
           st.integers(-10**9, 10**9).filter(lambda v: v != 0))
    def test_euclid_identity(self, a, b):
        assert c_div(a, b) * b + c_mod(a, b) == a

    @given(st.integers(-10**6, 10**6),
           st.integers(-10**6, 10**6).filter(lambda v: v != 0))
    def test_remainder_magnitude_bounded(self, a, b):
        assert abs(c_mod(a, b)) < abs(b)

    @given(st.integers(0, 10**9), st.integers(1, 10**9))
    def test_matches_python_for_non_negative(self, a, b):
        assert c_div(a, b) == a // b
        assert c_mod(a, b) == a % b
