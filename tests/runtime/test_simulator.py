"""Behavioural tests of the model executor (run-to-completion et al.)."""

import pytest

from repro.runtime import (
    CantHappenError,
    Simulation,
    SimulationError,
    TraceKind,
)
from repro.xuml import ModelBuilder


def counter_model():
    """A counter driven by self events, plus a spawner using creation."""
    builder = ModelBuilder("M")
    component = builder.component("c")

    counter = component.klass("Counter", "CN")
    counter.attr("cn_id", "unique_id")
    counter.attr("value", "integer")
    counter.attr("limit", "integer")
    counter.event("CN1", "start", params=[("limit", "integer")])
    counter.event("CN2", "step")
    counter.event("CN3", "done")
    counter.state("Idle", 1)
    counter.state("Arming", 2, activity="""
        self.limit = param.limit;
        generate CN2:CN() to self;
    """)
    counter.state("Counting", 3, activity="""
        if (self.value < self.limit)
            self.value = self.value + 1;
            generate CN2:CN() to self;
        else
            generate CN3:CN() to self;
        end if;
    """)
    counter.state("Done", 4)
    counter.trans("Idle", "CN1", "Arming")
    counter.trans("Arming", "CN2", "Counting")
    counter.trans("Counting", "CN2", "Counting")
    counter.trans("Counting", "CN3", "Done")
    counter.ignore("Done", "CN2")

    spawn = component.klass("Spawner", "SP")
    spawn.attr("sp_id", "unique_id")
    spawn.event("SP0", "spawn", creation=True, params=[("tag", "integer")])
    spawn.attr("tag", "integer")
    spawn.state("Alive", 1, activity="""
        self.tag = param.tag;
    """)
    spawn.creation("SP0", "Alive")

    return builder.build()


@pytest.fixture
def sim():
    return Simulation(counter_model())


class TestRunToCompletion:
    def test_counter_counts_to_limit(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 5})
        steps = sim.run_to_quiescence()
        assert sim.read_attribute(counter, "value") == 5
        assert sim.state_of(counter) == "Done"
        assert steps == 1 + 1 + 5 + 1   # CN1, first CN2, 5 steps, CN3

    def test_one_step_consumes_one_signal(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 2})
        assert sim.step() is True
        assert sim.state_of(counter) == "Arming"
        assert sim.step() is True
        assert sim.state_of(counter) == "Counting"

    def test_step_on_idle_pool_returns_false(self, sim):
        assert sim.step() is False

    def test_quiescence_guard(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 1000})
        with pytest.raises(SimulationError):
            sim.run_to_quiescence(max_steps=5)


class TestTableResponses:
    def test_ignored_event_is_dropped_with_trace(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 1})
        sim.run_to_quiescence()
        sim.inject(counter, "CN2")         # ignored in Done
        sim.run_to_quiescence()
        ignored = sim.trace.of_kind(TraceKind.SIGNAL_IGNORED)
        assert any(e.data["reason"] == "ignored" for e in ignored)
        assert sim.state_of(counter) == "Done"

    def test_cant_happen_raises_by_default(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN3")         # no entry in Idle
        with pytest.raises(CantHappenError):
            sim.run_to_quiescence()

    def test_cant_happen_record_policy(self):
        sim = Simulation(counter_model(), cant_happen="record")
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN3")
        sim.run_to_quiescence()
        assert sim.cant_happen_count == 1
        assert sim.state_of(counter) == "Idle"


class TestCreationEvents:
    def test_creation_event_births_instance(self, sim):
        sim.send_creation("SP", "SP0", {"tag": 42})
        assert sim.instances_of("SP") == ()
        sim.run_to_quiescence()
        handles = sim.instances_of("SP")
        assert len(handles) == 1
        assert sim.read_attribute(handles[0], "tag") == 42
        assert sim.state_of(handles[0]) == "Alive"

    def test_non_creation_event_rejected_as_creation(self, sim):
        with pytest.raises(SimulationError):
            sim.send_creation("CN", "CN2")

    def test_multiple_creations_fifo(self, sim):
        sim.send_creation("SP", "SP0", {"tag": 1})
        sim.send_creation("SP", "SP0", {"tag": 2})
        sim.run_to_quiescence()
        tags = [sim.read_attribute(h, "tag") for h in sim.instances_of("SP")]
        assert tags == [1, 2]


class TestTimeAndTimers:
    def test_delayed_event_advances_clock(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 1}, delay=500)
        sim.run_to_quiescence()
        assert sim.now == 500
        assert sim.state_of(counter) == "Done"

    def test_run_until_does_not_pass_time(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 1}, delay=1000)
        sim.run_until(999)
        assert sim.state_of(counter) == "Idle"
        assert sim.now == 999
        sim.run_until(1000)
        assert sim.state_of(counter) == "Done"

    def test_run_backwards_rejected(self, sim):
        sim.run_until(10)
        with pytest.raises(SimulationError):
            sim.run_until(5)

    def test_timer_start_and_cancel(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.schedule_timer(counter, "CN", "CN1", 100)
        cancelled = sim.cancel_timer(counter, "CN1")
        assert cancelled == 1
        sim.run_until(200)
        assert sim.state_of(counter) == "Idle"


class TestDeletionSemantics:
    def test_signals_to_deleted_instance_dropped(self, sim):
        counter = sim.create_instance("CN", cn_id=1)
        sim.inject(counter, "CN1", {"limit": 1})
        sim.delete_instance(counter)
        sim.run_to_quiescence()    # must not raise
        dropped = [
            e for e in sim.trace.of_kind(TraceKind.SIGNAL_IGNORED)
            if e.data.get("reason") == "target deleted"
        ]
        # the pending CN1 was purged at delete time (counted in the
        # INSTANCE_DELETED record) or dropped at dispatch
        deleted = sim.trace.of_kind(TraceKind.INSTANCE_DELETED)
        assert deleted[0].data["pending_dropped"] == 1 or dropped

    def test_handles_are_never_reused(self, sim):
        first = sim.create_instance("CN", cn_id=1)
        sim.delete_instance(first)
        second = sim.create_instance("CN", cn_id=2)
        assert second != first


class TestMultiComponentSelection:
    def test_unnamed_component_requires_single(self):
        builder = ModelBuilder("Two")
        builder.component("a")
        builder.component("b")
        model = builder.build(check=False)
        with pytest.raises(SimulationError):
            Simulation(model)
        assert Simulation(model, component="a").component.name == "a"
