"""Interpreter semantics exercised through small purpose-built models."""

import pytest

from repro.runtime import SelectionError, Simulation
from repro.xuml import ModelBuilder


def build_lab(activity: str, extra=None):
    """A model whose single transition runs *activity* on a Lab instance."""
    builder = ModelBuilder("M")
    component = builder.component("c")
    component.enum("Mode", ["OFF", "ON", "AUTO"])
    component.ext("LOG").bridge("info", params=[("message", "string")])

    lab = component.klass("Lab", "L")
    lab.attr("l_id", "unique_id")
    lab.attr("n", "integer")
    lab.attr("x", "real")
    lab.attr("s", "string")
    lab.attr("flag", "boolean")
    lab.attr("mode", "Mode")
    lab.event("GO", params=[("a", "integer")])
    lab.state("Idle", 1)
    lab.state("Ran", 2, activity=activity)
    lab.trans("Idle", "GO", "Ran")

    item = component.klass("Item", "IT")
    item.attr("it_id", "unique_id")
    item.attr("rank", "integer")
    component.assoc("R1", ("L", "collects", "0..1"),
                    ("IT", "is collected by", "*"))
    if extra is not None:
        extra(component)
    return builder.build()


def run_lab(activity: str, a: int = 0, items: int = 0, extra=None):
    sim = Simulation(build_lab(activity, extra))
    lab = sim.create_instance("L", l_id=1)
    for index in range(items):
        item = sim.create_instance("IT", it_id=index + 1, rank=index)
        sim.relate(lab, item, "R1")
    sim.inject(lab, "GO", {"a": a})
    sim.run_to_quiescence()
    return sim, lab


class TestExpressions:
    def test_integer_division_is_c_style(self):
        sim, lab = run_lab("self.n = (0 - 7) / 2;")
        assert sim.read_attribute(lab, "n") == -3

    def test_modulo_is_c_style(self):
        sim, lab = run_lab("self.n = (0 - 7) % 2;")
        assert sim.read_attribute(lab, "n") == -1

    def test_real_division(self):
        sim, lab = run_lab("self.x = 7 / 2.0;")
        assert sim.read_attribute(lab, "x") == 3.5

    def test_short_circuit_and(self):
        # `1/0` would raise; short-circuit must skip it
        sim, lab = run_lab("""
            if (false and (1 / 0 == 1))
                self.n = 1;
            else
                self.n = 2;
            end if;
        """)
        assert sim.read_attribute(lab, "n") == 2

    def test_short_circuit_or(self):
        sim, lab = run_lab("""
            if (true or (1 / 0 == 1))
                self.n = 1;
            end if;
        """)
        assert sim.read_attribute(lab, "n") == 1

    def test_enum_values_compare(self):
        sim, lab = run_lab("""
            self.mode = Mode::AUTO;
            if (self.mode == Mode::AUTO)
                self.n = 7;
            end if;
        """)
        assert sim.read_attribute(lab, "n") == 7

    def test_string_concatenation(self):
        sim, lab = run_lab('self.s = "ab" + "cd";')
        assert sim.read_attribute(lab, "s") == "abcd"

    def test_param_access(self):
        sim, lab = run_lab("self.n = param.a * 3;", a=4)
        assert sim.read_attribute(lab, "n") == 12


class TestSelectsAndSets:
    def test_select_many_collects_all(self):
        sim, lab = run_lab("""
            select many all_items from instances of IT;
            self.n = cardinality all_items;
        """, items=4)
        assert sim.read_attribute(lab, "n") == 4

    def test_select_any_on_empty_extent_gives_empty_ref(self):
        sim, lab = run_lab("""
            select any it from instances of IT;
            if (empty it)
                self.n = 1;
            end if;
        """)
        assert sim.read_attribute(lab, "n") == 1

    def test_where_filters(self):
        sim, lab = run_lab("""
            select many big from instances of IT
                where (selected.rank >= 2);
            self.n = cardinality big;
        """, items=5)
        assert sim.read_attribute(lab, "n") == 3

    def test_navigation_with_where(self):
        sim, lab = run_lab("""
            select many mine related by self->IT[R1]
                where (selected.rank == 1);
            self.n = cardinality mine;
        """, items=3)
        assert sim.read_attribute(lab, "n") == 1

    def test_select_one_multiple_matches_raises(self):
        activity = "select one it related by self->IT[R1];"
        sim = Simulation(build_lab(activity))
        lab = sim.create_instance("L", l_id=1)
        for index in range(2):
            item = sim.create_instance("IT", it_id=index + 1)
            sim.relate(lab, item, "R1")
        sim.inject(lab, "GO", {"a": 0})
        with pytest.raises(SelectionError):
            sim.run_to_quiescence()

    def test_foreach_with_break_and_continue(self):
        sim, lab = run_lab("""
            select many all_items from instances of IT;
            total = 0;
            for each it in all_items
                if (it.rank == 1)
                    continue;
                end if;
                if (it.rank == 3)
                    break;
                end if;
                total = total + 1;
            end for;
            self.n = total;
        """, items=5)
        assert sim.read_attribute(lab, "n") == 2   # ranks 0 and 2

    def test_create_and_delete_in_activity(self):
        sim, lab = run_lab("""
            create object instance fresh of IT;
            fresh.rank = 99;
            select many all_items from instances of IT;
            self.n = cardinality all_items;
            delete object instance fresh;
        """)
        assert sim.read_attribute(lab, "n") == 1
        assert sim.instances_of("IT") == ()

    def test_relate_unrelate_in_activity(self):
        sim, lab = run_lab("""
            create object instance fresh of IT;
            relate self to fresh across R1;
            select many mine related by self->IT[R1];
            self.n = cardinality mine;
            unrelate self from fresh across R1;
            select many after related by self->IT[R1];
            self.n = self.n * 10 + cardinality after;
        """)
        assert sim.read_attribute(lab, "n") == 10


class TestLoops:
    def test_while_loop(self):
        sim, lab = run_lab("""
            i = 0;
            acc = 0;
            while (i < 10)
                acc = acc + i;
                i = i + 1;
            end while;
            self.n = acc;
        """)
        assert sim.read_attribute(lab, "n") == 45

    def test_runaway_loop_bounded(self):
        activity = """
            i = 0;
            while (i < 1)
                self.n = self.n + 1;
            end while;
        """
        sim = Simulation(build_lab(activity))
        sim.loop_bound = 100
        lab = sim.create_instance("L", l_id=1)
        sim.inject(lab, "GO", {"a": 0})
        from repro.oal.errors import OALRuntimeError
        with pytest.raises(OALRuntimeError):
            sim.run_to_quiescence()


class TestBridgesAndOperations:
    def test_log_bridge_records(self):
        sim, lab = run_lab('LOG::info(message: "hello");')
        assert sim.bridges.log_lines == [(0, "hello")]

    def test_custom_bridge_registration(self):
        def extra(component):
            component.ext("HW").bridge(
                "read_reg", params=[("addr", "integer")], returns="integer")

        activity = "self.n = HW::read_reg(addr: 16);"
        sim = Simulation(build_lab(activity, extra))
        sim.bridges.register(
            "HW", "read_reg", lambda ctx, addr: addr * 2)
        lab = sim.create_instance("L", l_id=1)
        sim.inject(lab, "GO", {"a": 0})
        sim.run_to_quiescence()
        assert sim.read_attribute(lab, "n") == 32

    def test_instance_operation_return_value(self):
        def extra(component):
            pass

        builder = ModelBuilder("M")
        component = builder.component("c")
        calc = component.klass("Calc", "CC")
        calc.attr("cc_id", "unique_id")
        calc.attr("out", "integer")
        calc.operation("square", body="return param.v * param.v;",
                       returns="integer", params=[("v", "integer")])
        calc.event("GO")
        calc.state("Idle", 1)
        calc.state("Ran", 2, activity="self.out = self.square(v: 9);")
        calc.trans("Idle", "GO", "Ran")
        model = builder.build()
        sim = Simulation(model)
        calc_inst = sim.create_instance("CC", cc_id=1)
        sim.inject(calc_inst, "GO")
        sim.run_to_quiescence()
        assert sim.read_attribute(calc_inst, "out") == 81

    def test_derived_attribute_reads_compute(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        box = component.klass("Box", "BX")
        box.attr("bx_id", "unique_id")
        box.attr("w", "integer", default=3)
        box.attr("h", "integer", default=4)
        box.attr("area", "integer", derived="self.w * self.h")
        model = builder.build()
        sim = Simulation(model)
        handle = sim.create_instance("BX", bx_id=1)
        assert sim.read_attribute(handle, "area") == 12
        sim.write_attribute(handle, "w", 10)
        assert sim.read_attribute(handle, "area") == 40
