"""Unit tests for the bridge registry and the standard services."""

import pytest

from repro.runtime import BridgeError, Simulation
from repro.xuml import ModelBuilder


def build_timer_model():
    builder = ModelBuilder("M")
    component = builder.component("c")
    tim = component.ext("TIM")
    tim.bridge("current_time", returns="timestamp")
    tim.bridge("timer_start", params=[("duration", "integer"),
                                      ("event", "string")],
               returns="integer")
    tim.bridge("timer_cancel", params=[("event", "string")],
               returns="integer")
    component.ext("LOG").bridge("metric", params=[("name", "string"),
                                                  ("value", "real")])

    widget = component.klass("Widget", "W")
    widget.attr("w_id", "unique_id")
    widget.attr("stamp", "timestamp")
    widget.attr("fired", "integer")
    widget.event("GO")
    widget.event("TICK")
    widget.event("STOP")
    widget.state("Idle", 1)
    widget.state("Armed", 2, activity="""
        self.stamp = TIM::current_time();
        started = TIM::timer_start(duration: 500, event: "TICK");
        LOG::metric(name: "armed", value: 1.0);
    """)
    widget.state("Fired", 3, activity="""
        self.fired = self.fired + 1;
    """)
    widget.state("Cancelled", 4, activity="""
        cancelled = TIM::timer_cancel(event: "TICK");
    """)
    widget.trans("Idle", "GO", "Armed")
    widget.trans("Armed", "TICK", "Fired")
    widget.trans("Armed", "STOP", "Cancelled")
    widget.ignore("Cancelled", "TICK")
    widget.ignore("Fired", "GO")
    return builder.build()


class TestTimService:
    def test_current_time_reads_simulated_clock(self):
        sim = Simulation(build_timer_model())
        widget = sim.create_instance("W", w_id=1)
        sim.inject(widget, "GO", delay=250)
        sim.run_until(250)
        assert sim.read_attribute(widget, "stamp") == 250

    def test_timer_fires_after_duration(self):
        sim = Simulation(build_timer_model())
        widget = sim.create_instance("W", w_id=1)
        sim.inject(widget, "GO")
        sim.run_until(499)
        assert sim.state_of(widget) == "Armed"
        sim.run_until(500)
        assert sim.state_of(widget) == "Fired"
        assert sim.read_attribute(widget, "fired") == 1

    def test_timer_cancel_prevents_firing(self):
        sim = Simulation(build_timer_model())
        widget = sim.create_instance("W", w_id=1)
        sim.inject(widget, "GO")
        sim.inject(widget, "STOP", delay=100)
        sim.run_until(1_000)
        assert sim.state_of(widget) == "Cancelled"

    def test_metrics_collected(self):
        sim = Simulation(build_timer_model())
        widget = sim.create_instance("W", w_id=1)
        sim.inject(widget, "GO")
        sim.run_to_quiescence()
        assert sim.bridges.metrics["armed"] == [(0, 1.0)]


class TestRegistry:
    def test_unregistered_bridge_raises(self):
        builder = ModelBuilder("M")
        component = builder.component("c")
        component.ext("HW").bridge("poke")
        widget = component.klass("Widget", "W")
        widget.attr("w_id", "unique_id")
        widget.event("GO")
        widget.state("Idle", 1)
        widget.state("Poked", 2, activity="HW::poke();")
        widget.trans("Idle", "GO", "Poked")
        sim = Simulation(builder.build())
        handle = sim.create_instance("W", w_id=1)
        sim.inject(handle, "GO")
        with pytest.raises(BridgeError):
            sim.run_to_quiescence()

    def test_registration_overrides(self):
        sim = Simulation(build_timer_model())
        calls = []
        sim.bridges.register(
            "LOG", "metric",
            lambda ctx, name, value: calls.append((name, value)))
        widget = sim.create_instance("W", w_id=1)
        sim.inject(widget, "GO")
        sim.run_to_quiescence()
        assert calls == [("armed", 1.0)]
        assert sim.bridges.metrics == {}     # default impl replaced

    def test_has(self):
        sim = Simulation(build_timer_model())
        assert sim.bridges.has("TIM", "current_time")
        assert not sim.bridges.has("TIM", "warp_time")
