"""Unit tests for instance populations and link storage."""

import pytest

from repro.runtime import (
    DeadInstanceError,
    LinkStore,
    MultiplicityError,
    Population,
    SimulationError,
)
from repro.xuml import ModelBuilder


def component():
    builder = ModelBuilder("M")
    c = builder.component("c")
    widget = c.klass("Widget", "W")
    widget.attr("w_id", "unique_id")
    widget.attr("count", "integer", default=5)
    c.klass("Gadget", "G").attr("g_id", "unique_id")
    c.klass("Person", "P").attr("p_id", "unique_id")
    c.assoc("R1", ("W", "owns", "1"), ("G", "is owned by", "*"))
    c.assoc("R2", ("P", "manages", "0..1"), ("P", "is managed by", "*"))
    model = builder.build(check=False)
    return model.component("c")


class TestPopulation:
    def test_create_applies_defaults(self):
        pop = Population(component().klass("W"))
        instance = pop.create(1)
        assert instance.attributes == {"w_id": 0, "count": 5}
        assert instance.current_state is None    # passive class

    def test_get_and_has(self):
        pop = Population(component().klass("W"))
        pop.create(3)
        assert pop.has(3)
        assert pop.get(3).handle == 3
        assert not pop.has(4)

    def test_delete_marks_dead(self):
        pop = Population(component().klass("W"))
        instance = pop.create(1)
        pop.delete(1)
        assert not instance.alive
        with pytest.raises(DeadInstanceError):
            instance.get("count")
        with pytest.raises(DeadInstanceError):
            pop.get(1)

    def test_double_delete_raises(self):
        pop = Population(component().klass("W"))
        pop.create(1)
        pop.delete(1)
        with pytest.raises(DeadInstanceError):
            pop.delete(1)

    def test_unknown_attribute_access(self):
        pop = Population(component().klass("W"))
        instance = pop.create(1)
        with pytest.raises(SimulationError):
            instance.get("ghost")
        with pytest.raises(SimulationError):
            instance.set("ghost", 1)

    def test_creation_order_preserved(self):
        pop = Population(component().klass("W"))
        pop.create(2)
        pop.create(1)
        assert [i.handle for i in pop.all()] == [2, 1]


class TestLinkStore:
    def setup_method(self):
        self.component = component()
        self.links = LinkStore(self.component)
        self.r1 = self.component.association("R1")
        self.r2 = self.component.association("R2")

    def test_relate_and_navigate_both_directions(self):
        self.links.relate(self.r1, 1, "W", 2, "G")
        assert self.links.navigate(self.r1, 1, "W", "G") == (2,)
        assert self.links.navigate(self.r1, 2, "G", "W") == (1,)

    def test_one_end_multiplicity_enforced(self):
        # each G sees exactly 1 W: relating a second W to the same G fails
        self.links.relate(self.r1, 1, "W", 2, "G")
        with pytest.raises(MultiplicityError):
            self.links.relate(self.r1, 3, "W", 2, "G")

    def test_many_end_accepts_several(self):
        self.links.relate(self.r1, 1, "W", 2, "G")
        self.links.relate(self.r1, 1, "W", 3, "G")
        assert self.links.navigate(self.r1, 1, "W", "G") == (2, 3)

    def test_relate_is_idempotent(self):
        self.links.relate(self.r1, 1, "W", 2, "G")
        self.links.relate(self.r1, 1, "W", 2, "G")
        assert self.links.count("R1") == 1

    def test_unrelate(self):
        self.links.relate(self.r1, 1, "W", 2, "G")
        self.links.unrelate(self.r1, 1, "W", 2, "G")
        assert self.links.navigate(self.r1, 1, "W", "G") == ()

    def test_unrelate_missing_link_raises(self):
        with pytest.raises(SimulationError):
            self.links.unrelate(self.r1, 1, "W", 2, "G")

    def test_reflexive_needs_phrase(self):
        with pytest.raises(SimulationError):
            self.links.relate(self.r2, 1, "P", 2, "P")
        self.links.relate(self.r2, 1, "P", 2, "P", phrase="is managed by")

    def test_reflexive_navigation_by_phrase(self):
        # 1 manages 2: "2 is managed by 1"
        self.links.relate(self.r2, 1, "P", 2, "P", phrase="is managed by")
        assert self.links.navigate(
            self.r2, 1, "P", "P", phrase="is managed by") == (2,)
        assert self.links.navigate(
            self.r2, 2, "P", "P", phrase="manages") == (1,)

    def test_reflexive_upper_bound(self):
        # a person has at most one manager (manages end is 0..1)
        self.links.relate(self.r2, 1, "P", 3, "P", phrase="is managed by")
        with pytest.raises(MultiplicityError):
            self.links.relate(self.r2, 2, "P", 3, "P",
                              phrase="is managed by")

    def test_drop_instance_clears_all_links(self):
        self.links.relate(self.r1, 1, "W", 2, "G")
        self.links.relate(self.r1, 1, "W", 3, "G")
        self.links.drop_instance(1)
        assert self.links.navigate(self.r1, 2, "G", "W") == ()
        assert self.links.count("R1") == 0

    def test_integrity_violations_for_unconditional_end(self):
        # every G must have a W (the W end is mult 1)
        populations = {"W": [1], "G": [2], "P": []}
        violations = self.links.integrity_violations(populations)
        assert any("G#2" in v for v in violations)
        self.links.relate(self.r1, 1, "W", 2, "G")
        assert self.links.integrity_violations(populations) == []
