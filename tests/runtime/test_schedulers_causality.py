"""Scheduler legality and causality checking."""

import pytest

from repro.models import build_packetproc_model, packetproc
from repro.runtime import (
    InterleavedScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    Simulation,
    SynchronousScheduler,
    TraceKind,
    check_causality,
    check_receiver_fifo,
    check_trace,
)


def run_pipeline(scheduler=None, eager=False, packets=12):
    sim = Simulation(build_packetproc_model(), scheduler=scheduler,
                     eager_dispatch=eager)
    handles = packetproc.populate(sim)
    packetproc.inject_packets(sim, handles["M"], packets, length=128,
                              spacing=50)
    sim.run_to_quiescence()
    return sim, handles


ALL_SCHEDULERS = [
    lambda: SynchronousScheduler(),
    lambda: RoundRobinScheduler(),
    lambda: InterleavedScheduler(1),
    lambda: InterleavedScheduler(12345),
]


class TestSchedulerLegality:
    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_no_causality_violations(self, factory):
        sim, _handles = run_pipeline(factory())
        assert check_trace(sim.trace) == []

    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_same_per_instance_behaviour(self, factory):
        baseline, _ = run_pipeline(SynchronousScheduler())
        other, _ = run_pipeline(factory())
        assert (baseline.trace.behavioural_summary()
                == other.trace.behavioural_summary())

    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_all_packets_accounted(self, factory):
        sim, handles = run_pipeline(factory())
        assert sim.read_attribute(handles["ST"], "packets") == 12

    def test_priority_scheduler_is_legal_too(self):
        model = build_packetproc_model()
        sim = Simulation(model)
        scheduler = PriorityScheduler(
            {"CE": 5, "D": 3}, class_of_handle=sim.class_of)
        sim.scheduler = scheduler
        handles = packetproc.populate(sim)
        packetproc.inject_packets(sim, handles["M"], 8, length=96, spacing=10)
        sim.run_to_quiescence()
        assert check_trace(sim.trace) == []
        assert sim.read_attribute(handles["ST"], "packets") == 8


class TestCausalityChecker:
    def test_clean_trace_has_no_violations(self):
        sim, _ = run_pipeline()
        assert check_causality(sim.trace) == []
        assert check_receiver_fifo(sim.trace) == []

    def test_eager_dispatch_breaks_run_to_completion(self):
        sim, handles = run_pipeline(eager=True)
        violations = check_causality(sim.trace)
        assert violations, "eager dispatch must violate RTC causality"
        assert all(v.kind == "run-to-completion" for v in violations)

    def test_eager_dispatch_still_processes_packets(self):
        # the ablation breaks ordering guarantees, not the data path
        sim, handles = run_pipeline(eager=True)
        assert sim.read_attribute(handles["ST"], "packets") == 12

    def test_violation_rendering(self):
        sim, _ = run_pipeline(eager=True)
        violation = check_causality(sim.trace)[0]
        text = str(violation)
        assert "run-to-completion" in text


class TestTraceQueries:
    def test_state_history(self):
        sim, handles = run_pipeline(packets=1)
        history = sim.trace.state_history(handles["M"])
        assert history == ("Checking", "Forwarding", "Ready")

    def test_signal_labels_in_consumption_order(self):
        sim, handles = run_pipeline(packets=1)
        labels = sim.trace.signal_labels()
        assert labels[0] == "M1"
        assert "ST1" in labels

    def test_transitions_of_filters_by_handle(self):
        sim, handles = run_pipeline(packets=1)
        for event in sim.trace.transitions_of(handles["CE"]):
            assert event.data["handle"] == handles["CE"]

    def test_behavioural_summary_is_per_instance(self):
        sim, handles = run_pipeline(packets=2)
        summary = dict(sim.trace.behavioural_summary())
        assert handles["M"] in summary
        assert summary[handles["M"]][0] == ("M1", "Checking")

    def test_trace_event_str(self):
        sim, _ = run_pipeline(packets=1)
        assert "signal_sent" in str(sim.trace.of_kind(TraceKind.SIGNAL_SENT)[0])
