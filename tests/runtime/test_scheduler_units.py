"""Direct unit tests of the scheduler policies over a hand-built pool."""

from repro.runtime import (
    CREATION,
    EventPool,
    InterleavedScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    SignalInstance,
    SynchronousScheduler,
)


def signal(seq, target, creation=False, class_key="W"):
    return SignalInstance(
        sequence=seq, label=f"EV{seq}", class_key=class_key, params={},
        target_handle=None if creation else target,
        sender_handle=None, is_creation=creation,
    )


def pool_with(*signals):
    pool = EventPool()
    for s in signals:
        pool.push_ready(s)
    return pool


class TestSynchronous:
    def test_global_send_order(self):
        pool = pool_with(signal(3, 5), signal(1, 9), signal(2, 7))
        assert SynchronousScheduler().choose(pool) == 9   # seq 1 first

    def test_creation_competes_by_sequence(self):
        pool = pool_with(signal(2, 5), signal(1, None, creation=True))
        assert SynchronousScheduler().choose(pool) == CREATION

    def test_idle_pool(self):
        assert SynchronousScheduler().choose(EventPool()) is None


class TestRoundRobin:
    def test_rotates_over_sources(self):
        scheduler = RoundRobinScheduler()
        pool = pool_with(signal(1, 3), signal(2, 3), signal(3, 7),
                         signal(4, 7))
        picks = []
        for _ in range(4):
            source = scheduler.choose(pool)
            picks.append(source)
            pool.pop_for(source)
        assert picks == [3, 7, 3, 7]

    def test_wraps_around(self):
        scheduler = RoundRobinScheduler()
        pool = pool_with(signal(1, 3), signal(2, 7))
        first = scheduler.choose(pool)
        pool.pop_for(first)
        second = scheduler.choose(pool)
        assert {first, second} == {3, 7}


class TestInterleaved:
    def test_seeded_and_deterministic(self):
        pool_a = pool_with(*(signal(i, i % 5 + 1) for i in range(1, 20)))
        pool_b = pool_with(*(signal(i, i % 5 + 1) for i in range(1, 20)))
        a = InterleavedScheduler(42)
        b = InterleavedScheduler(42)
        picks_a = [a.choose(pool_a) for _ in range(5)]
        picks_b = [b.choose(pool_b) for _ in range(5)]
        assert picks_a == picks_b

    def test_only_ready_sources_chosen(self):
        pool = pool_with(signal(1, 4))
        assert InterleavedScheduler(0).choose(pool) == 4


class TestPriority:
    def test_higher_priority_class_first(self):
        pool = EventPool()
        pool.push_ready(signal(1, 10, class_key="LOW"))
        pool.push_ready(signal(2, 20, class_key="HIGH"))
        classes = {10: "LOW", 20: "HIGH"}
        scheduler = PriorityScheduler({"HIGH": 9, "LOW": 1},
                                      class_of_handle=classes.__getitem__)
        assert scheduler.choose(pool) == 20

    def test_sequence_breaks_ties(self):
        pool = EventPool()
        pool.push_ready(signal(5, 10, class_key="A"))
        pool.push_ready(signal(2, 20, class_key="A"))
        classes = {10: "A", 20: "A"}
        scheduler = PriorityScheduler({}, class_of_handle=classes.__getitem__)
        assert scheduler.choose(pool) == 20

    def test_unlisted_class_defaults_to_zero(self):
        pool = EventPool()
        pool.push_ready(signal(1, 10, class_key="MEH"))
        pool.push_ready(signal(2, 20, class_key="VIP"))
        classes = {10: "MEH", 20: "VIP"}
        scheduler = PriorityScheduler({"VIP": 1},
                                      class_of_handle=classes.__getitem__)
        assert scheduler.choose(pool) == 20
