"""Behavioural tests of the prebuilt catalog models."""

import pytest

from repro.models import (
    CATALOG,
    all_models,
    build_model,
    checksum,
    elevator,
    fletcher_reference,
    microwave,
    packetproc,
    trafficlight,
)
from repro.runtime import Simulation, check_trace
from repro.xuml import check_model


class TestCatalog:
    def test_all_models_build_and_check(self):
        models = all_models()
        assert len(models) == len(CATALOG)
        for model in models.values():
            errors = [v for v in check_model(model)
                      if v.severity.value == "error"]
            assert errors == []

    def test_build_model_by_name(self):
        assert build_model("microwave").name == "Microwave"
        with pytest.raises(KeyError):
            build_model("nope")

    def test_catalog_highlights_documented(self):
        for entry in CATALOG:
            assert entry.highlight


class TestMicrowave:
    def test_cook_countdown_ticks_in_seconds(self):
        sim = Simulation(microwave.build_microwave_model())
        oven, _tube = microwave.populate(sim)
        sim.inject(oven, "MO1", {"seconds": 4})
        sim.run_until(1_500_000)
        assert sim.read_attribute(oven, "remaining_seconds") == 2
        sim.run_to_quiescence()
        assert sim.now == 4_000_000

    def test_tube_follows_oven(self):
        sim = Simulation(microwave.build_microwave_model())
        oven, tube = microwave.populate(sim)
        sim.inject(oven, "MO1", {"seconds": 10})
        sim.run_until(1_000_000)
        assert sim.state_of(tube) == "Energized"
        sim.inject(oven, "MO2")
        sim.run_until(1_100_000)
        assert sim.state_of(tube) == "Off"

    def test_pause_preserves_remaining_time(self):
        sim = Simulation(microwave.build_microwave_model())
        oven, _tube = microwave.populate(sim)
        sim.inject(oven, "MO1", {"seconds": 10})
        sim.run_until(3_500_000)
        sim.inject(oven, "MO2")
        sim.run_until(60_000_000)           # door stays open a long time
        remaining = sim.read_attribute(oven, "remaining_seconds")
        assert sim.state_of(oven) == "Paused"
        sim.inject(oven, "MO3")
        sim.run_to_quiescence()
        assert sim.state_of(oven) == "Complete"
        # total cook time resumed where it left off
        assert sim.now == 60_000_000 + remaining * 1_000_000


class TestTrafficLight:
    def test_full_cycle_timing(self):
        sim = Simulation(trafficlight.build_trafficlight_model())
        tc, _ = trafficlight.populate(sim)
        trafficlight.start(sim, tc)
        # one full cycle: 30+5+2+30+5+2 = 74 s
        sim.run_until(74_000_000)
        assert sim.state_of(tc) == "NSGreen"
        assert sim.read_attribute(tc, "cycles") == 2

    def test_multiple_buttons_one_controller(self):
        sim = Simulation(trafficlight.build_trafficlight_model())
        tc, buttons = trafficlight.populate(sim, buttons=3)
        trafficlight.start(sim, tc)
        for button in buttons:
            sim.inject(button, "PB1", delay=5_000_000)
        sim.run_until(5_500_000)        # inside the 1 s cut window
        # all three fired, but the controller cut green only once
        assert sim.state_of(tc) == "NSGreenCut"
        assert sim.read_attribute(tc, "ped_services") == 1


class TestPacketProc:
    def test_flow_accounting_partitions_traffic(self):
        sim = Simulation(packetproc.build_packetproc_model())
        handles = packetproc.populate(sim)
        packetproc.inject_packets(sim, handles["M"], 40, length=100)
        sim.run_to_quiescence()
        per_flow = [sim.read_attribute(handles[f"FR{f}"], "packets")
                    for f in range(4)]
        assert per_flow == [10, 10, 10, 10]
        assert sum(per_flow) == sim.read_attribute(handles["ST"], "packets")

    def test_crypto_only_odd_flows(self):
        sim = Simulation(packetproc.build_packetproc_model())
        handles = packetproc.populate(sim)
        packetproc.inject_packets(sim, handles["M"], 8, length=64)
        sim.run_to_quiescence()
        assert sim.read_attribute(handles["CE"], "encrypted") == 4
        assert check_trace(sim.trace) == []

    def test_byte_accounting_consistent(self):
        sim = Simulation(packetproc.build_packetproc_model())
        handles = packetproc.populate(sim)
        packetproc.inject_packets(sim, handles["M"], 5, length=333)
        sim.run_to_quiescence()
        assert sim.read_attribute(handles["M"], "rx_bytes") == 5 * 333
        assert sim.read_attribute(handles["ST"], "bytes_total") == 5 * 333
        assert sim.read_attribute(handles["D"], "bytes_moved") == 5 * 333


class TestElevator:
    def test_closest_idle_car_wins_first(self):
        sim = Simulation(elevator.build_elevator_model())
        bank, cars = elevator.populate(sim, cars=2)
        sim.inject(bank, "B1", {"floor": 6, "going_up": True})
        sim.run_to_quiescence()
        trips = [sim.read_attribute(car, "trips") for car in cars]
        assert sorted(trips) == [0, 1]

    def test_calls_are_deleted_after_service(self):
        sim = Simulation(elevator.build_elevator_model())
        bank, _cars = elevator.populate(sim, cars=1)
        for floor in (3, 3, 3):
            sim.inject(bank, "B1", {"floor": floor, "going_up": True})
        sim.run_to_quiescence()
        assert sim.instances_of("CA") == ()
        assert sim.referential_violations() == []

    def test_floors_travelled_accumulates(self):
        sim = Simulation(elevator.build_elevator_model())
        bank, cars = elevator.populate(sim, cars=1)
        sim.inject(bank, "B1", {"floor": 5, "going_up": True})
        sim.run_to_quiescence()
        assert sim.read_attribute(cars[0], "floors_travelled") == 4
        assert sim.read_attribute(cars[0], "current_floor") == 5


class TestChecksum:
    def test_reference_implementation_agrees(self):
        sim = Simulation(checksum.build_checksum_model())
        checksum.populate(sim)
        for job_id, (length, seed) in enumerate(
                [(1, 0), (10, 5), (255, 254), (300, 7)], start=1):
            checksum.submit_job(sim, job_id, length, seed)
        sim.run_to_quiescence()
        for handle in sim.instances_of("J"):
            expected = fletcher_reference(
                sim.read_attribute(handle, "length"),
                sim.read_attribute(handle, "seed"))
            assert sim.read_attribute(handle, "result") == expected
            assert sim.read_attribute(handle, "done") is True

    def test_engine_serializes_jobs(self):
        sim = Simulation(checksum.build_checksum_model())
        engines = checksum.populate(sim, engines=1)
        for job_id in range(1, 6):
            checksum.submit_job(sim, job_id, 20)
        sim.run_to_quiescence()
        assert sim.read_attribute(engines[0], "jobs_done") == 5
        assert len(sim.instances_of("J")) == 5

    def test_class_operation_counts_engines(self):
        sim = Simulation(checksum.build_checksum_model())
        checksum.populate(sim, engines=3)
        assert sim.call_class_operation("AC", "engines_available", {}) == 3
