"""E12 — one execution core: the unification is free (and usually wins).

The refactor collapsed three OAL executors — the abstract runtime's AST
tree-walker, the architecture runtime's IR evaluator, and the signal-flow
analyzer's private walk — onto one lowered-IR evaluator in
:mod:`repro.exec`.  Two shapes to reproduce:

* **Equivalence** — every catalog model x its golden verify suite
  produces *byte-identical* exported traces on the pinned pre-refactor
  AST path and the live IR path.  The refactor is a code-shape change,
  not a semantics change.
* **Throughput** — the catalog-wide suite sweep on the IR path is no
  slower than 1.05x the AST baseline (sanity bound for CI); in practice
  it is faster, because each model's activities are parsed, analyzed
  and lowered once into the fingerprint-keyed cache instead of being
  re-analyzed on every simulation construction and tree-walked node by
  node thereafter.

The AST baseline executes through a pinned verbatim copy of the retired
interpreter (``tests/exec/pinned_ast_interpreter.py``) so the
comparison stays honest after the original file is long gone.
"""

from __future__ import annotations

import importlib.util
import pathlib
import statistics
import time

from repro.exec import clear_lowering_cache, lowering_cache_stats
from repro.models import build_model
from repro.models.catalog import CATALOG
from repro.obs import dump_jsonl
from repro.runtime import Simulation
from repro.verify import Target, run_case, suite_for

from conftest import print_table

ROUNDS = 5
SLOWDOWN_BOUND = 1.05


def _load_pinned_simulation():
    path = (pathlib.Path(__file__).resolve().parent.parent
            / "tests" / "exec" / "pinned_ast_interpreter.py")
    spec = importlib.util.spec_from_file_location(
        "pinned_ast_interpreter", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.PinnedAstSimulation


def _sweep(sim_factory) -> None:
    """One catalog-wide pass: fresh engine per case, full suite each."""
    for entry in CATALOG:
        for case in suite_for(entry.name):
            run_case(case, Target(sim_factory(build_model(entry.name))))


def _median_time(fn, rounds: int = ROUNDS) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run_experiment():
    pinned_cls = _load_pinned_simulation()

    # --- equivalence: byte-identical traces, case by case --------------
    mismatches = []
    cases_swept = 0
    for entry in CATALOG:
        for case in suite_for(entry.name):
            pinned = Target(pinned_cls(build_model(entry.name)))
            live = Target(Simulation(build_model(entry.name)))
            run_case(case, pinned)
            run_case(case, live)
            if dump_jsonl(live.trace) != dump_jsonl(pinned.trace):
                mismatches.append((entry.name, case.name))
            cases_swept += 1

    # --- throughput: catalog-wide sweep on each path --------------------
    clear_lowering_cache()
    ast_s = _median_time(lambda: _sweep(pinned_cls))
    clear_lowering_cache()
    ir_s = _median_time(lambda: _sweep(Simulation))
    cache = lowering_cache_stats()

    return {
        "cases": cases_swept,
        "mismatches": mismatches,
        "ast_s": ast_s,
        "ir_s": ir_s,
        "cache": cache,
    }


def test_e12_exec_core(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    ast_ms = results["ast_s"] * 1000
    ir_ms = results["ir_s"] * 1000
    ratio = results["ir_s"] / results["ast_s"]
    print_table(
        "E12: one execution core (catalog x golden suites)",
        f"{'path':<28}{'sweep ms':>12}{'vs AST':>10}",
        [
            f"{'AST tree-walker (pinned)':<28}{ast_ms:>12.1f}{'1.00x':>10}",
            f"{'lowered-IR core (live)':<28}{ir_ms:>12.1f}"
            f"{ratio:>9.2f}x",
        ],
    )
    print(f"equivalence: {results['cases']} suite cases, "
          f"{len(results['mismatches'])} trace mismatch(es)")
    print(f"lowering cache after IR sweep: {results['cache']['entries']} "
          f"entrie(s), {results['cache']['hits']} hit(s), "
          f"{results['cache']['misses']} miss(es)")

    # shape: the refactor changed nothing observable
    assert results["mismatches"] == [], results["mismatches"]
    assert results["cases"] >= 20

    # shape: the unified core costs at most 5% — and the cache proves the
    # per-model lowering was paid once, not once per construction
    assert results["ir_s"] <= SLOWDOWN_BOUND * results["ast_s"], (
        f"IR path {ir_ms:.1f}ms is more than {SLOWDOWN_BOUND}x the "
        f"AST baseline {ast_ms:.1f}ms")
    assert results["cache"]["misses"] == len(CATALOG)
    assert results["cache"]["hits"] > results["cache"]["misses"]

    benchmark.extra_info["ast_ms"] = round(ast_ms, 2)
    benchmark.extra_info["ir_ms"] = round(ir_ms, 2)
    benchmark.extra_info["ir_vs_ast"] = round(ratio, 3)
    benchmark.extra_info["cases"] = results["cases"]
