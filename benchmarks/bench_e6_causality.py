"""E6 — "The actions in the destination state of the receiver execute
after the action that sent the signal.  This captures desired cause and
effect." (section 2)

Regenerates the causality table: randomized signal storms on the
packet-processor model, executed under every scheduler policy, with the
trace checker counting violations of run-to-completion causality and
per-receiver FIFO.  Shape to reproduce: zero violations under every
conforming scheduler, and a strictly positive count under the
``eager_dispatch`` ablation that delivers signals mid-activity — the
rule the profile exists to enforce, shown to be load-bearing.

Also reports dispatch throughput (events/s) per scheduler, the cost of
the paper's execution discipline.
"""

from __future__ import annotations

import time

from repro.models import build_packetproc_model
from repro.runtime import (
    InterleavedScheduler,
    RoundRobinScheduler,
    Simulation,
    SynchronousScheduler,
    check_trace,
)

from conftest import print_table

PACKETS = 120

SCHEDULERS = (
    ("synchronous", lambda: SynchronousScheduler()),
    ("round_robin", lambda: RoundRobinScheduler()),
    ("interleaved(7)", lambda: InterleavedScheduler(7)),
    ("interleaved(99)", lambda: InterleavedScheduler(99)),
)


def run_storm(model, scheduler_factory, eager: bool = False,
              self_priority: bool = True):
    from repro.models import packetproc
    from repro.runtime import CantHappenError
    sim = Simulation(model, scheduler=scheduler_factory(),
                     eager_dispatch=eager, self_priority=self_priority)
    handles = packetproc.populate(sim)
    packetproc.inject_packets(sim, handles["M"], PACKETS, length=200,
                              spacing=0 if not self_priority else 100)
    started = time.perf_counter()
    try:
        steps = sim.run_to_quiescence()
    except CantHappenError:
        steps = -1          # the model broke: the rule was load-bearing
    elapsed = time.perf_counter() - started
    violations = check_trace(sim.trace)
    packets_done = sim.read_attribute(handles["ST"], "packets")
    return steps, elapsed, violations, packets_done


def run_experiment(model):
    rows = {}
    for name, factory in SCHEDULERS:
        rows[name] = run_storm(model, factory)
    rows["EAGER (ablation)"] = run_storm(
        model, SCHEDULERS[0][1], eager=True)
    rows["NO-SELF-PRI (ablation)"] = run_storm(
        model, SCHEDULERS[0][1], self_priority=False)
    return rows


def test_e6_causality(benchmark):
    model = build_packetproc_model()
    rows = benchmark.pedantic(run_experiment, args=(model,),
                              rounds=1, iterations=1)

    printable = []
    for name, (steps, elapsed, violations, done) in rows.items():
        rate = steps / elapsed if elapsed > 0 and steps > 0 else 0.0
        note = " CANT-HAPPEN" if steps < 0 else ""
        printable.append(
            f"{name:22s} {steps:7d} {done:5d} {len(violations):6d} "
            f"{rate:12.0f}{note}")
    print_table(
        "E6: causality under scheduler policies "
        f"({PACKETS} packets storm)",
        f"{'scheduler':22s} {'steps':>7s} {'pkts':>5s} {'viol':>6s} "
        f"{'events/s':>12s}",
        printable,
    )

    # shape: every conforming scheduler preserves cause and effect
    for name, _factory in SCHEDULERS:
        steps, _t, violations, done = rows[name]
        assert not violations, f"{name}: {violations[:3]}"
        assert done == PACKETS
    # shape: breaking run-to-completion is *detected* by the checker
    _steps, _t, eager_violations, _done = rows["EAGER (ablation)"]
    assert len(eager_violations) > 0
    benchmark.extra_info["eager_violations"] = len(eager_violations)
    # shape: dropping self-event priority breaks the model outright
    steps, _t, _v, _done = rows["NO-SELF-PRI (ablation)"]
    assert steps == -1
