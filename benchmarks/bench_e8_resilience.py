"""E8 — resilience of generated systems under platform faults.

The paper's conformance argument (E3) assumes the platform delivers
every boundary message intact.  E8 drops that assumption: the golden
conformance suites replay on the co-simulated SoC while the bus drops,
corrupts, duplicates and delays frames at a swept rate.  Shape to
reproduce: with reliability marks (CRC framing + bounded retransmit)
every catalog model stays fully conformant — zero failed cases, zero
causality violations — at every swept rate; without the marks the
platform degrades *gracefully* (losses counted, nothing raises) and
visibly loses traffic at the top rate.  The price of protection is the
frame trailer: more bus bytes, bounded by 2x on these small payloads.

Every fault is a pure function of the sweep seed, so any failing point
reproduces exactly from the printed parameters.
"""

from __future__ import annotations

from repro.verify import chaos_sweep

from conftest import print_table

RATES = (0.0, 0.01, 0.02, 0.05)
SEED = 7
MODELS = ("microwave", "elevator")


def run_experiment():
    results = {}
    for model in MODELS:
        results[model] = {
            "protected": chaos_sweep(model, rates=RATES, seed=SEED,
                                     protected=True),
            "unprotected": chaos_sweep(model, rates=RATES, seed=SEED,
                                       protected=False),
        }
    return results


def test_e8_resilience(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    printable = []
    for model, reports in results.items():
        for flavor in ("protected", "unprotected"):
            report = reports[flavor]
            for point in report.points:
                stats = point.fault_stats
                ok = sum(1 for case in point.cases if case.clean)
                printable.append(
                    f"{model:10s} {flavor:12s} {point.rate:6.3f} "
                    f"{ok:3d}/{len(point.cases):<3d} "
                    f"{point.causality_violations:5d} {stats.injected:5d} "
                    f"{stats.retransmissions:5d} {stats.recovered:6d} "
                    f"{stats.lost:5d} {point.bus_bytes:8d}")
    print_table(
        f"E8: conformance under injected bus faults (seed={SEED})",
        f"{'model':10s} {'build':12s} {'rate':>6s} {'cases':>7s} "
        f"{'caus':>5s} {'inj':>5s} {'rexm':>5s} {'recov':>6s} "
        f"{'lost':>5s} {'bus B':>8s}",
        printable,
    )

    for model, reports in results.items():
        protected = reports["protected"]
        unprotected = reports["unprotected"]

        # shape: marked builds ride out every swept fault rate
        assert protected.conformant, protected.render()
        for point in protected.points:
            assert point.causality_violations == 0
            assert point.fault_stats.lost == 0
            assert point.fault_stats.critical_lost == 0

        # shape: faults were really flying at the non-zero rates
        top = protected.points[-1]
        assert top.rate >= 0.05
        assert top.fault_stats.injected > 0

        # shape: unprotected builds degrade gracefully — counted losses,
        # never an uncaught exception
        assert not unprotected.crashed, unprotected.render()
        assert unprotected.points[-1].fault_stats.injected > 0

        # shape: the trailer costs bus bytes, bounded by 2x on these
        # 4-byte payloads (4B payload + 4B trailer)
        clean_protected = protected.points[0].bus_bytes
        clean_plain = unprotected.points[0].bus_bytes
        assert clean_protected > clean_plain
        assert clean_protected <= 2 * clean_plain

        benchmark.extra_info[f"{model}_protected_lost"] = sum(
            point.fault_stats.lost for point in protected.points)
        benchmark.extra_info[f"{model}_unprotected_lost"] = sum(
            point.fault_stats.lost for point in unprotected.points)
        benchmark.extra_info[f"{model}_retransmissions"] = sum(
            point.fault_stats.retransmissions for point in protected.points)

    # shape: somewhere in the sweep, the unprotected platform actually
    # lost traffic — protection is shown to be load-bearing
    assert any(
        point.fault_stats.lost > 0
        for reports in results.values()
        for point in reports["unprotected"].points
    )
