"""Shared fixtures for the experiment benchmarks.

Each ``bench_e*.py`` regenerates one experiment of DESIGN.md's index and
prints its paper-style table (visible with ``pytest -s`` or in
``--benchmark-only`` summaries via ``extra_info``).  Assertions encode
the *shape* each experiment must reproduce — who wins, by roughly what
factor — so a regression in any subsystem fails the bench, not just the
timing.
"""

from __future__ import annotations

import pytest

from repro.models import all_models


@pytest.fixture(scope="session")
def catalog():
    """All example models, built once per session."""
    return all_models()


def print_table(title: str, header: str, rows: list[str]) -> None:
    print()
    print(f"=== {title} ===")
    print(header)
    for row in rows:
        print(row)
