"""E4 — "Once the prototype runs, it is possible to measure the
performance, which may require changing the partition" (section 1).

Regenerates the partition-sweep table: packet latency / throughput / CPU
utilization of candidate hardware partitions of the packet-processor
SoC, across offered loads.  Shape to reproduce:

* at low load every partition meets demand and differences are small;
* with rising load the all-software prototype saturates (CPU -> 1.0,
  latency inflates by orders of magnitude) while the crypto+DMA
  hardware partitions hold latency flat — the measurement that *drives*
  the repartition decision;
* the winning partition at high load offloads the compute-heavy classes.
"""

from __future__ import annotations

from repro.cosim import (
    CoSimConfig,
    best_partition,
    measure_partition,
    poisson_packets,
    sweep_partitions,
)
from repro.models import build_packetproc_model

from conftest import print_table

CANDIDATES = [(), ("CE",), ("CE", "D"), ("CE", "CL", "D")]
LOADS = (40, 300)
PACKETS = 250


def run_experiment(model):
    results = {}
    for rate in LOADS:
        packets = poisson_packets(PACKETS, rate_per_ms=rate, seed=7)
        results[rate] = sweep_partitions(model, CANDIDATES, packets)
    return results


def test_e4_partition_sweep(benchmark):
    model = build_packetproc_model()
    results = benchmark.pedantic(run_experiment, args=(model,),
                                 rounds=1, iterations=1)

    for rate, rows in results.items():
        print_table(
            f"E4: partition sweep at {rate} packets/ms",
            f"{'partition':18s} {'mean lat':>10s} {'p99 lat':>10s} "
            f"{'thr/s':>9s} {'cpu':>5s} {'bus':>6s}",
            [
                f"{m.label:18s} {m.mean_latency_ns/1000:8.1f}us "
                f"{m.p99_latency_ns/1000:8.1f}us "
                f"{m.throughput_per_s:9.0f} {m.cpu_utilization:5.2f} "
                f"{m.bus_utilization:6.3f}"
                for m in rows
            ],
        )

    low = {m.label: m for m in results[LOADS[0]]}
    high = {m.label: m for m in results[LOADS[1]]}
    all_sw_low = low["(all software)"]
    all_sw_high = high["(all software)"]
    hw_high = high["CE+D"]
    benchmark.extra_info["sw_saturation_cpu"] = all_sw_high.cpu_utilization
    benchmark.extra_info["hw_speedup_at_high_load"] = (
        all_sw_high.mean_latency_ns / hw_high.mean_latency_ns)

    # every partition completes the offered load
    for rows in results.values():
        for m in rows:
            assert m.completed == m.offered_packets

    # shape: software saturates at high load...
    assert all_sw_high.cpu_utilization > 0.95
    # ...and its latency inflates by well over an order of magnitude
    assert all_sw_high.mean_latency_ns > 10 * all_sw_low.mean_latency_ns
    # shape: hardware offload keeps latency flat-ish across loads
    assert hw_high.mean_latency_ns < 10 * low["CE+D"].mean_latency_ns
    # shape: at high load, offloading wins by a large factor
    assert all_sw_high.mean_latency_ns > 5 * hw_high.mean_latency_ns
    # shape: the sweep's winner at high load puts crypto in hardware
    winner = best_partition(results[LOADS[1]])
    assert "CE" in winner.hardware_classes
    # shape: at low load the gap is modest (the crossover territory)
    gap_low = (all_sw_low.mean_latency_ns
               / low["CE+CL+D"].mean_latency_ns)
    gap_high = (all_sw_high.mean_latency_ns
                / high["CE+CL+D"].mean_latency_ns)
    assert gap_high > gap_low


def test_e4b_bus_arbitration_ablation(benchmark):
    """DESIGN.md ablation: bus arbitration policy under heavy crossings.

    All three policies must deliver every packet (arbitration is a
    fairness/latency knob, not a correctness knob), and the policies
    must be observably different — the fixed-priority bus favours
    low-id messages, shifting the latency distribution relative to FIFO.
    """
    model = build_packetproc_model()
    packets = poisson_packets(PACKETS, rate_per_ms=250, seed=11)

    def run_policies():
        rows = {}
        for policy in ("fifo", "priority", "round_robin"):
            config = CoSimConfig(bus_policy=policy,
                                 bus_arbitration_ns=2_000,
                                 bus_ns_per_byte=120.0)  # a saturated bus
            rows[policy] = measure_partition(
                model, ("CE", "D"), packets, config=config)
        return rows

    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    print_table(
        "E4b: bus arbitration ablation (CE+D partition, congested bus)",
        f"{'policy':12s} {'mean lat':>10s} {'p99 lat':>10s} "
        f"{'bus util':>9s} {'msgs':>6s}",
        [
            f"{policy:12s} {m.mean_latency_ns/1000:8.1f}us "
            f"{m.p99_latency_ns/1000:8.1f}us "
            f"{m.bus_utilization:9.3f} {m.bus_messages:6d}"
            for policy, m in rows.items()
        ],
    )

    for policy, measurement in rows.items():
        assert measurement.completed == measurement.offered_packets, policy
        assert measurement.bus_messages == rows["fifo"].bus_messages
    latencies = {policy: m.mean_latency_ns for policy, m in rows.items()}
    # the knob does something: the policies differ measurably
    assert max(latencies.values()) > 1.1 * min(latencies.values())
    # fixed priority starves the late-pipeline (high-id) messages that
    # gate packet completion, so fair arbitration wins on mean latency
    assert latencies["round_robin"] < latencies["priority"]
