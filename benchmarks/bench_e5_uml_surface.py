"""E5 — "Executable UML is a small, but powerful, subset of UML ...
we need more UML like a hole in the head" (sections 2/5).

Regenerates the UML-surface table: the UML 1.5 metaclass inventory per
specification package, the slice the Executable UML profile defines
semantics for, and the slice the five SoC example models actually
instantiate.  Shape to reproduce: the profile needs well under a third
of UML 1.5 (and about a tenth of UML 2.0's 260 metaclasses), yet it
expressed every model in this repository.
"""

from __future__ import annotations

from repro.baselines import (
    UML20_METACLASS_COUNT,
    surface_summary,
    surface_table,
)

from conftest import print_table


def test_e5_uml_surface(benchmark, catalog):
    rows_data = benchmark.pedantic(
        surface_table, args=(catalog,), rounds=3, iterations=1)
    summary = surface_summary(catalog)

    rows = [
        f"{row.package:44s} {row.total:5d} {row.in_profile:7d} "
        f"{row.used_by_models:4d}"
        for row in rows_data
    ]
    rows.append(f"{'TOTAL':44s} {summary['uml15_metaclasses']:5.0f} "
                f"{summary['profile_metaclasses']:7.0f} "
                f"{summary['used_metaclasses']:4.0f}")
    print_table(
        "E5: UML metaclass surface",
        f"{'UML 1.5 package':44s} {'total':>5s} {'profile':>7s} "
        f"{'used':>4s}",
        rows,
    )
    print(f"profile share of UML 1.5: "
          f"{summary['profile_share_of_uml15']:.1%}")
    print(f"profile share of UML 2.0 ({UML20_METACLASS_COUNT} metaclasses): "
          f"{summary['profile_share_of_uml20']:.1%}")
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in summary.items()})

    # shape: the profile is a small subset...
    assert summary["profile_share_of_uml15"] < 1 / 3
    assert summary["profile_share_of_uml20"] < 1 / 6
    # ...and the example SoC systems exercise most of what it keeps
    assert summary["used_share_of_profile"] > 0.5
    # the whole-use-case packages contribute nothing to the profile
    by_package = {row.package: row for row in rows_data}
    assert by_package["BehavioralElements.UseCases"].in_profile == 0
    assert by_package["BehavioralElements.Collaborations"].in_profile == 0
