"""E9 — the build cache makes the paper's cheap-retarget claim measurable.

E2 showed a partition change costs one mark flip instead of hundreds of
hand-edited lines; E9 shows the *regeneration* after that flip is cheap
too.  Shape to reproduce: a warm-cache single-mark retarget is at least
5× faster than a cold full compile while recompiling strictly fewer
classes and producing byte-identical artifacts; and the batch scheduler
compiling the catalog × mark-variant matrix with 4 workers beats 1
worker on wall clock.

Timing uses best-of-N medians over the same inputs; byte-identity and
class-reuse assertions are exact, so a cache bug fails the bench even
on a noisy machine.

The parallel half of the claim needs hardware that can express it: on a
box with one usable core, four CPU-bound workers cannot beat one, so
there the bench asserts the scheduler's degradation is bounded (within
2.5x of serial) and that the results are still digest-identical —
correctness never depends on the core count.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.build import (
    ArtifactStore,
    IncrementalCompiler,
    batch_to_csv,
    catalog_matrix,
    clear_manifest_memo,
    run_batch,
)
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import build_model

from conftest import print_table

MODEL = "elevator"
ROUNDS = 5
PARALLEL_JOBS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _median_time(fn, rounds: int = ROUNDS) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run_experiment(tmp_path):
    model = build_model(MODEL)
    component = model.components[0]
    keys = sorted(component.class_keys)
    marks_a = marks_for_partition(component, (keys[0],))
    marks_b = marks_for_partition(component, (keys[1],))

    # --- cold: the status quo, a full compile per retarget -------------
    clear_manifest_memo()
    cold_s = _median_time(lambda: ModelCompiler(model).compile(marks_b))
    cold_build = ModelCompiler(model).compile(marks_b)

    # --- warm: the cache has seen partition A; retarget to B -----------
    clear_manifest_memo()
    store = ArtifactStore(tmp_path / "cache")
    compiler = IncrementalCompiler(model, store=store)
    compiler.compile(marks_a)
    first_start = time.perf_counter()
    warm_build = compiler.compile(marks_b)
    first_retarget_s = time.perf_counter() - first_start
    retarget_stats = compiler.last_stats
    # steady state: every piece of both partitions is cached
    warm_s = _median_time(lambda: compiler.compile(marks_b))

    # --- parallel: the full catalog matrix, 1 worker vs 4 --------------
    matrix = catalog_matrix()
    clear_manifest_memo()
    serial = min(
        (run_batch(matrix, jobs=1, use_cache=False)
         for _ in range(3)), key=lambda r: r.elapsed_s)
    parallel = min(
        (run_batch(matrix, jobs=PARALLEL_JOBS, use_cache=False)
         for _ in range(3)), key=lambda r: r.elapsed_s)

    # and the cached batch: second run over one shared cache directory
    cache_dir = str(tmp_path / "batch-cache")
    run_batch(matrix, jobs=PARALLEL_JOBS, cache_dir=cache_dir)
    cached = run_batch(matrix, jobs=PARALLEL_JOBS, cache_dir=cache_dir)

    return {
        "cold_s": cold_s,
        "first_retarget_s": first_retarget_s,
        "warm_s": warm_s,
        "cold_build": cold_build,
        "warm_build": warm_build,
        "retarget_stats": retarget_stats,
        "matrix": matrix,
        "serial": serial,
        "parallel": parallel,
        "cached": cached,
    }


def test_e9_build_cache(benchmark, tmp_path):
    results = benchmark.pedantic(
        lambda: run_experiment(tmp_path), rounds=1, iterations=1)

    cold_s = results["cold_s"]
    warm_s = results["warm_s"]
    first_s = results["first_retarget_s"]
    stats = results["retarget_stats"]
    serial = results["serial"]
    parallel = results["parallel"]
    cached = results["cached"]
    cores = _usable_cores()

    print_table(
        f"E9: build cache — cold vs warm retarget ({MODEL}), "
        f"batch x{len(results['matrix'])} jobs",
        f"{'measure':34s} {'value':>12s}",
        [
            f"{'cold full compile':34s} {cold_s * 1000:10.2f}ms",
            f"{'first warm retarget (1 mark)':34s} "
            f"{first_s * 1000:10.2f}ms",
            f"{'steady warm retarget':34s} {warm_s * 1000:10.2f}ms",
            f"{'speedup (cold/warm)':34s} {cold_s / warm_s:11.1f}x",
            f"{'classes recompiled on retarget':34s} "
            f"{stats.classes_compiled:3d} of {stats.classes_total:3d}",
            f"{'usable cpu cores':34s} {cores:12d}",
            f"{'batch serial (1 worker)':34s} "
            f"{serial.elapsed_s * 1000:10.0f}ms",
            f"{'batch parallel (4 workers)':34s} "
            f"{parallel.elapsed_s * 1000:10.0f}ms",
            f"{'parallel speedup':34s} "
            f"{serial.elapsed_s / parallel.elapsed_s:11.2f}x",
            f"{'second-run cache hit rate':34s} "
            f"{cached.hit_rate * 100:10.1f}%",
        ],
    )

    # shape: warm retarget produces byte-identical artifacts to a cold
    # full build of the same marks
    assert results["warm_build"].artifacts == \
        results["cold_build"].artifacts

    # shape: the retarget recompiled strictly fewer classes — only the
    # two classes whose side changed (A's class back to sw, B's to hw)
    assert 0 < stats.classes_compiled < stats.classes_total
    assert stats.classes_reused == stats.classes_total - \
        stats.classes_compiled
    assert stats.manifest_reused

    # shape: the cached retarget is >= 5x faster than the cold compile
    assert cold_s >= 5 * warm_s, (
        f"warm retarget {warm_s * 1000:.2f}ms not 5x faster than "
        f"cold {cold_s * 1000:.2f}ms")

    # shape: 4 workers beat 1 worker on the catalog matrix — wherever
    # the hardware has more than one core to run them on.  On a
    # single-core box the same assertion would measure the scheduler's
    # contention, not its speedup, so there the bound is that fanning
    # out costs at most 2.5x serial while staying digest-identical.
    assert not serial.failed and not parallel.failed
    assert [r.digest for r in serial.results] == \
        [r.digest for r in parallel.results]
    if cores >= 2:
        assert parallel.elapsed_s < serial.elapsed_s, (
            f"parallel {parallel.elapsed_s:.2f}s vs serial "
            f"{serial.elapsed_s:.2f}s on {cores} cores")
    else:
        assert parallel.elapsed_s < 2.5 * serial.elapsed_s, (
            f"single-core degradation unbounded: parallel "
            f"{parallel.elapsed_s:.2f}s vs serial "
            f"{serial.elapsed_s:.2f}s")

    # shape: a repeated batch is served from cache, nothing recompiled
    assert cached.hit_rate >= 0.9
    assert cached.classes_compiled == 0

    # the counters export as CSV like E8's sweeps do
    csv_lines = batch_to_csv(cached).strip().splitlines()
    assert csv_lines[0].startswith("model,variant,ok")
    assert len(csv_lines) == len(results["matrix"]) + 1

    benchmark.extra_info["cold_ms"] = round(cold_s * 1000, 3)
    benchmark.extra_info["warm_ms"] = round(warm_s * 1000, 3)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)
    benchmark.extra_info["parallel_speedup"] = round(
        serial.elapsed_s / parallel.elapsed_s, 2)
    benchmark.extra_info["usable_cores"] = cores
    benchmark.extra_info["second_run_hit_rate"] = round(
        cached.hit_rate, 3)
