"""E1 — "Invariably, the two components do not mesh properly" (section 1)
vs "the two halves are known to fit together" (section 4).

Regenerates the interface-drift table: mean integration defects of the
parallel-teams workflow under specification churn, against the generated
workflow under the identical churn stream.  Shape to reproduce: manual
defects grow with churn and miss probability; generated defects are
exactly zero everywhere.
"""

from __future__ import annotations

from repro.baselines import run_generated_flow, run_parallel_teams
from repro.marks import marks_for_partition
from repro.mda import ModelCompiler
from repro.models import build_packetproc_model

from conftest import print_table

CHURN_LEVELS = (5, 20, 50)
MISS_PROBABILITIES = (0.05, 0.15, 0.30)
SEEDS = tuple(range(10))


def _interface_spec():
    model = build_packetproc_model()
    component = model.components[0]
    build = ModelCompiler(model).compile(
        marks_for_partition(component, ("CE", "D")))
    return build.interface


def run_experiment(spec):
    table = {}
    for churn in CHURN_LEVELS:
        for miss in MISS_PROBABILITIES:
            outcomes = [
                run_parallel_teams(spec, churn, miss, seed=seed)
                for seed in SEEDS
            ]
            table[(churn, miss, "manual")] = (
                sum(o.defect_count for o in outcomes) / len(outcomes))
        table[(churn, None, "generated")] = run_generated_flow(
            spec, churn, seed=0).defect_count
    return table


def test_e1_interface_drift(benchmark):
    spec = _interface_spec()
    table = benchmark.pedantic(run_experiment, args=(spec,),
                               rounds=2, iterations=1)

    rows = []
    for churn in CHURN_LEVELS:
        cells = " ".join(
            f"{table[(churn, miss, 'manual')]:10.1f}"
            for miss in MISS_PROBABILITIES)
        rows.append(f"{churn:6d} {cells} "
                    f"{table[(churn, None, 'generated')]:10d}")
    print_table(
        "E1: integration defects under spec churn",
        f"{'churn':>6s} " + " ".join(
            f"miss={p:<5.2f}" for p in MISS_PROBABILITIES) + "  generated",
        rows,
    )
    benchmark.extra_info["defects_churn50_miss30"] = table[(50, 0.30, "manual")]

    # shape: generated is exactly zero, always
    for churn in CHURN_LEVELS:
        assert table[(churn, None, "generated")] == 0
    # shape: manual drifts, and grows with churn at every miss level
    assert table[(50, 0.30, "manual")] > 0
    for miss in MISS_PROBABILITIES:
        assert table[(50, miss, "manual")] >= table[(5, miss, "manual")]
    # shape: more missed updates, more defects (at the heaviest churn)
    assert (table[(50, 0.30, "manual")] > table[(50, 0.05, "manual")])
