"""E11 — whole-model lint finds real concurrency defects, cheaply.

The signal-flow analyzer's acceptance bar, measured over the catalog:
at least one true lost-signal and one true race finding backed by a
*replayable* interleaving witness, zero false ERRORs (every ERROR must
carry a witness or a table proof — on the shipped catalog that means
zero ERRORs at all), and the seeded witness search stays under 10
seconds per model.  Timing is asserted per model rather than per
finding: one search sweep serves every finding of a model, so the
per-model bound is the stricter claim.
"""

from __future__ import annotations

from repro.analysis import lint_model, replay_witness
from repro.models import CATALOG, build_model

from conftest import print_table

#: Seconds one model's full lint (including witness search) may take.
TIME_BUDGET_S = 10.0


def test_e11_lint_catalog():
    rows = []
    total_errors = 0
    witnessed_rules = set()
    replayed = 0

    for entry in CATALOG:
        model = build_model(entry.name)
        report = lint_model(model)
        counts = report.counts()
        total_errors += counts["error"]

        for finding in report.witnessed:
            witnessed_rules.add(finding.rule)
            assert replay_witness(
                model, finding.witness,
                component=report.component_name), (
                f"{entry.name}: witness for {finding.rule} on "
                f"{finding.element} does not replay")
            replayed += 1

        assert report.elapsed_s < TIME_BUDGET_S, (
            f"{entry.name}: lint took {report.elapsed_s:.2f}s "
            f"(budget {TIME_BUDGET_S}s)")

        rows.append(
            f"{entry.name:12s} {len(report.findings):8d} "
            f"{counts['error']:6d} {counts['warning']:8d} "
            f"{counts['info']:5d} {len(report.witnessed):9d} "
            f"{report.runs_executed:5d} {report.elapsed_s:7.2f}s")

    print_table(
        "E11: whole-model signal-flow lint over the catalog",
        f"{'model':12s} {'findings':>8s} {'error':>6s} {'warning':>8s} "
        f"{'info':>5s} {'witnessed':>9s} {'runs':>5s} {'time':>8s}",
        rows)

    # zero false ERRORs: on the shipped catalog, zero ERRORs at all
    assert total_errors == 0
    # the catalog contains at least one true lost signal and one true
    # race, each confirmed by a schedule that replayed above
    assert "lost-signal" in witnessed_rules
    assert "race" in witnessed_rules
    assert replayed >= 2
