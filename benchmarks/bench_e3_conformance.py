"""E3 — "A model can be executed independent of implementation"
(section 2) and "the defined behavior is preserved" (section 4).

Regenerates the conformance matrix: every catalog model's formal test
suite, run on the abstract model, the generated-C architecture and the
generated-VHDL architecture, with per-instance trace digests compared.
Shape to reproduce: 100% pass on every platform, traces equal.
"""

from __future__ import annotations

import pytest

from repro.verify import check_conformance, suite_for

from conftest import print_table

MODEL_NAMES = ("microwave", "trafficlight", "packetproc", "elevator",
               "checksum")


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_e3_conformance(benchmark, catalog, model_name):
    model = catalog[model_name]
    suite = suite_for(model_name)

    report = benchmark.pedantic(
        check_conformance, args=(model, suite), rounds=1, iterations=1)

    rows = []
    for case in report.cases:
        cells = " ".join(
            f"{'PASS' if result.passed else 'FAIL':>14s}"
            for result in case.results)
        traces = "equal" if case.summaries_equal else "DIVERGE"
        rows.append(f"{case.case_name:32s} {cells}  {traces}")
    print_table(
        f"E3: conformance matrix — {model_name}",
        f"{'case':32s} " + " ".join(
            f"{name:>14s}" for name in report.target_names) + "  traces",
        rows,
    )
    benchmark.extra_info["pass_rate"] = report.pass_rate()

    assert report.pass_rate() == 1.0
    assert report.conformant
    for case in report.cases:
        assert case.summaries_equal, f"{case.case_name}: traces diverged"
