"""E2 — "Changing the partition is a matter of changing the placement of
the marks" (section 4).

Regenerates the repartition-cost table: for every single-class move of
the packet-processor SoC (and a selection of multi-class moves), the
hand-edited line count of the implementation-first workflow against the
mark flips of the model-driven workflow.  Shape to reproduce: the
model-driven cost is the number of classes moved (1 flip per class); the
implementation-first cost is two orders of magnitude larger.
"""

from __future__ import annotations

from repro.baselines import price_all_single_moves, price_repartition
from repro.models import build_packetproc_model

from conftest import print_table

MULTI_MOVES = [
    ((), ("CE", "D")),
    ((), ("CE", "CL", "D")),
    (("CE",), ("D",)),
    (("CE", "D"), ()),
]


def run_experiment(model):
    singles = price_all_single_moves(model)
    multis = [price_repartition(model, a, b) for a, b in MULTI_MOVES]
    return singles, multis


def test_e2_partition_cost(benchmark):
    model = build_packetproc_model()
    singles, multis = benchmark.pedantic(
        run_experiment, args=(model,), rounds=2, iterations=1)

    rows = []
    for cost in singles + multis:
        move = (f"{'+'.join(cost.from_hardware) or 'sw-only':12s} -> "
                f"{'+'.join(cost.to_hardware) or 'sw-only':12s}")
        rows.append(
            f"{move:32s} {cost.impl_first_total:8d} {cost.mark_flips:6d} "
            f"{cost.reduction_factor:8.1f}x")
    print_table(
        "E2: repartition cost — hand-edited lines vs mark flips",
        f"{'partition change':32s} {'impl-1st':>8s} {'flips':>6s} "
        f"{'factor':>9s}",
        rows,
    )
    benchmark.extra_info["max_factor"] = max(
        c.reduction_factor for c in singles + multis)

    for cost in singles:
        # one class moved = exactly one flipped sticky note
        assert cost.mark_flips == len(cost.moved_classes) == 1
        # and a real rewrite on the other side of the ledger
        assert cost.impl_first_total > 50 * cost.mark_flips
    for cost in multis:
        assert cost.mark_flips == len(cost.moved_classes)
        assert cost.impl_first_total > 50 * cost.mark_flips
