"""E7 — "The two halves are known to fit together because the interface
was generated" (section 4).

Regenerates the interface-fit matrix: for every catalog model and every
single-class hardware partition, emit both interface halves, parse each
half's layout table back *from the generated text*, and round-trip real
message bytes C-side -> VHDL-side and back.  Shape to reproduce: byte
equality for every message of every partition of every model — the
consistency-by-construction property, checked at the byte level.

Also times the full emit-parse-roundtrip pipeline (the cost of
regenerating an interface after a partition change: machine time, not
human time).
"""

from __future__ import annotations

from repro.marks import all_partitions, marks_for_partition
from repro.mda import InterfaceCodec, ModelCompiler

from conftest import print_table


def roundtrip_all(model):
    """(messages checked, byte mismatches, layout digests compared)."""
    component = model.components[0]
    compiler = ModelCompiler(model)
    checked = mismatches = partitions = 0
    for hardware in all_partitions(component):
        if len(hardware) != 1 and hardware != tuple(sorted(
                component.class_keys))[:2]:
            continue   # single-class moves plus one two-class sample
        partitions += 1
        build = compiler.compile(marks_for_partition(component, hardware))
        c_header = build.interface.emit_c_header()
        vhdl_pkg = build.interface.emit_vhdl_package()
        c_codec = InterfaceCodec.from_artifact(c_header)
        v_codec = InterfaceCodec.from_artifact(vhdl_pkg)
        assert c_codec.message_names() == v_codec.message_names()
        for name in c_codec.message_names():
            checked += 1
            _mid, _bytes, fields = c_codec.layouts[name]
            values = {}
            for index, (fname, tag, _off, width) in enumerate(fields):
                if tag == "real":
                    values[fname] = 2.5 * index
                elif tag == "boolean":
                    values[fname] = index % 2 == 0
                elif tag == "string":
                    values[fname] = f"v{index}"
                elif tag == "integer":
                    values[fname] = -(7 ** index) % (1 << (width - 1))
                else:
                    values[fname] = (13 * index + 1) % (1 << min(width, 31))
            packed_c = c_codec.pack(name, values)
            packed_v = v_codec.pack(name, values)
            if packed_c != packed_v:
                mismatches += 1
                continue
            if v_codec.unpack(name, packed_c) != c_codec.unpack(
                    name, packed_v):
                mismatches += 1
    return checked, mismatches, partitions


def test_e7_interface_fit(benchmark, catalog):
    def run_all():
        return {name: roundtrip_all(model)
                for name, model in catalog.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        f"{name:14s} {partitions:10d} {checked:8d} {mismatches:10d}"
        for name, (checked, mismatches, partitions) in results.items()
    ]
    print_table(
        "E7: generated halves fit (byte-level round trips)",
        f"{'model':14s} {'partitions':>10s} {'messages':>8s} "
        f"{'mismatch':>10s}",
        rows,
    )
    total_checked = sum(c for c, _m, _p in results.values())
    benchmark.extra_info["messages_checked"] = total_checked

    assert total_checked > 0
    for name, (checked, mismatches, _partitions) in results.items():
        assert mismatches == 0, f"{name}: {mismatches} byte mismatches"
